//! The roofline analysis of paper Fig. 12.
//!
//! Performance (GFLOPS, counting one MAC as two floating-point-
//! equivalent operations at 100 MHz) against computational intensity
//! (ops per byte of DRAM traffic). Secure designs add a second, lower
//! bandwidth roof: the *effective* bandwidth through the cryptographic
//! engine.

use secureloop_arch::Architecture;

use crate::scheduler::NetworkSchedule;

/// The machine model: compute roof and memory slopes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflineModel {
    /// Horizontal roof: `2 · #PEs · f` in GFLOPS.
    pub peak_gflops: f64,
    /// DRAM-bandwidth slope in GB/s.
    pub dram_gbps: f64,
    /// Crypto-limited effective slope in GB/s (equals `dram_gbps` for
    /// unsecure designs).
    pub effective_gbps: f64,
}

impl RooflineModel {
    /// Derive the machine lines from an architecture.
    pub fn of(arch: &Architecture) -> Self {
        let hz = arch.clock_mhz() * 1e6;
        RooflineModel {
            peak_gflops: 2.0 * arch.num_pes() as f64 * hz / 1e9,
            dram_gbps: arch.dram().bytes_per_cycle() * hz / 1e9,
            effective_gbps: arch.effective_dram_bytes_per_cycle() * hz / 1e9,
        }
    }

    /// Attainable performance at a given intensity using the effective
    /// (crypto-limited) slope.
    pub fn attainable_gflops(&self, intensity_ops_per_byte: f64) -> f64 {
        self.peak_gflops
            .min(self.effective_gbps * intensity_ops_per_byte)
    }

    /// The ridge point: intensity at which the design turns
    /// compute-bound on the effective slope.
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_gflops / self.effective_gbps
    }
}

/// One workload/schedule point on the roofline plot.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Label, e.g. `"MobilenetV2 / Crypt-Opt-Cross"`.
    pub label: String,
    /// Operations per byte of off-chip traffic (authentication overhead
    /// included).
    pub intensity: f64,
    /// Achieved GFLOPS.
    pub gflops: f64,
}

/// Place a schedule on the roofline of `arch`.
pub fn schedule_point(schedule: &NetworkSchedule, arch: &Architecture) -> RooflinePoint {
    let flops = 2.0 * schedule.total_macs() as f64;
    let bytes = schedule.total_dram_bits() as f64 / 8.0;
    let seconds = schedule.total_latency_cycles as f64 / (arch.clock_mhz() * 1e6);
    RooflinePoint {
        label: format!("{} / {}", schedule.network, schedule.algorithm),
        intensity: flops / bytes,
        gflops: flops / seconds / 1e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annealing::AnnealingConfig;
    use crate::scheduler::{Algorithm, Scheduler};
    use secureloop_crypto::{CryptoConfig, EngineClass};
    use secureloop_mapper::SearchConfig;
    use secureloop_workload::zoo;

    #[test]
    fn machine_lines_match_base_config() {
        let m = RooflineModel::of(&Architecture::eyeriss_base());
        // 2 * 168 PEs * 100 MHz = 33.6 GFLOPS.
        assert!((m.peak_gflops - 33.6).abs() < 1e-9);
        // 64 B/cycle * 100 MHz = 6.4 GB/s.
        assert!((m.dram_gbps - 6.4).abs() < 1e-9);
        assert_eq!(m.dram_gbps, m.effective_gbps);
    }

    #[test]
    fn crypto_lowers_the_effective_slope() {
        let secure =
            Architecture::eyeriss_base().with_crypto(CryptoConfig::new(EngineClass::Parallel, 1));
        let m = RooflineModel::of(&secure);
        assert!(m.effective_gbps < m.dram_gbps);
        // The ridge moves right: more intensity needed to stay
        // compute-bound (paper Fig. 12's dotted line).
        let base = RooflineModel::of(&Architecture::eyeriss_base());
        assert!(m.ridge_intensity() > base.ridge_intensity());
    }

    #[test]
    fn schedule_points_lie_under_the_roof() {
        let arch =
            Architecture::eyeriss_base().with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
        let s = Scheduler::new(arch.clone())
            .with_search(SearchConfig::quick())
            .with_annealing(AnnealingConfig::quick());
        let sched = s
            .schedule(&zoo::alexnet_conv(), Algorithm::CryptOptSingle)
            .expect("schedules");
        let p = schedule_point(&sched, &arch);
        let m = RooflineModel::of(&arch);
        // Attained performance cannot exceed the attainable bound
        // (allow 1% numeric slack from cycle rounding).
        assert!(
            p.gflops <= m.attainable_gflops(p.intensity) * 1.01,
            "point {} GFLOPS above roof {}",
            p.gflops,
            m.attainable_gflops(p.intensity)
        );
        assert!(p.intensity > 0.0);
    }
}
