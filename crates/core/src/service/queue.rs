//! The bounded FIFO job queue: backpressure by shedding, not
//! buffering.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use secureloop_mapper::cancel;

/// How a submission fared against the queue bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted; `depth` is the queue depth including this job.
    Accepted {
        /// Queue depth after the push.
        depth: usize,
    },
    /// Shed: the queue was at its limit. The job never took a slot.
    Overloaded {
        /// Queue depth at rejection time (== the limit).
        depth: usize,
        /// The configured bound.
        limit: usize,
    },
}

struct Inner {
    queue: VecDeque<String>,
    /// Set on drain: stop admitting; workers exit once empty.
    draining: bool,
}

/// A bounded FIFO of job ids with condition-variable handoff to the
/// worker pool. Overflow is *shed* with a typed outcome — the queue
/// never grows past its limit, so a submission burst cannot balloon
/// memory or hide minutes of latency behind an unbounded backlog.
pub struct JobQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    limit: usize,
}

impl JobQueue {
    /// An empty queue bounded at `limit` (min 1) entries.
    pub fn new(limit: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                draining: false,
            }),
            ready: Condvar::new(),
            limit: limit.max(1),
        }
    }

    /// The configured bound.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Whether no job is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to enqueue a job id. Full or draining queues shed.
    pub fn submit(&self, id: impl Into<String>) -> SubmitOutcome {
        let mut g = self.lock();
        if g.draining || g.queue.len() >= self.limit {
            return SubmitOutcome::Overloaded {
                depth: g.queue.len(),
                limit: self.limit,
            };
        }
        g.queue.push_back(id.into());
        let depth = g.queue.len();
        drop(g);
        self.ready.notify_one();
        SubmitOutcome::Accepted { depth }
    }

    /// Re-enqueue a journalled job during startup recovery, bypassing
    /// the bound: the job was already admitted by a previous
    /// incarnation, and shedding it now would renege on that
    /// acceptance. (A config change can therefore briefly overfill the
    /// queue after a restart; it drains back under the bound as workers
    /// pull.)
    pub fn restore(&self, id: impl Into<String>) {
        self.lock().queue.push_back(id.into());
        self.ready.notify_one();
    }

    /// Remove a queued job (client cancellation). Returns whether the
    /// id was still queued.
    pub fn remove(&self, id: &str) -> bool {
        let mut g = self.lock();
        let before = g.queue.len();
        g.queue.retain(|q| q != id);
        g.queue.len() != before
    }

    /// Worker-side blocking pop.
    ///
    /// Returns `Some(id)` when a job is available; `None` when the
    /// worker should exit — either a process-wide shutdown was
    /// requested (queued jobs stay queued for the restart) or the
    /// queue is draining *and* empty (EOF drain: every queued job has
    /// been handed out). Wakes at least every 100ms to observe the
    /// shutdown flag, which a signal handler can flip while this
    /// thread is parked.
    pub fn next(&self) -> Option<String> {
        let mut g = self.lock();
        loop {
            if cancel::shutdown_requested() {
                return None;
            }
            if let Some(id) = g.queue.pop_front() {
                return Some(id);
            }
            if g.draining {
                return None;
            }
            let (guard, _timeout) = self
                .ready
                .wait_timeout(g, Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner());
            g = guard;
        }
    }

    /// Stop admitting. Workers drain the remaining entries (EOF drain)
    /// or exit immediately if a shutdown is also in flight.
    pub fn start_drain(&self) {
        self.lock().draining = true;
        self.ready.notify_all();
    }

    /// Whether the queue has stopped admitting.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_exactly_past_the_limit_in_fifo_order() {
        let q = JobQueue::new(2);
        assert_eq!(q.submit("a"), SubmitOutcome::Accepted { depth: 1 });
        assert_eq!(q.submit("b"), SubmitOutcome::Accepted { depth: 2 });
        assert_eq!(
            q.submit("c"),
            SubmitOutcome::Overloaded { depth: 2, limit: 2 }
        );
        assert_eq!(q.next().as_deref(), Some("a"));
        // A slot freed up: admission works again.
        assert_eq!(q.submit("d"), SubmitOutcome::Accepted { depth: 2 });
        assert_eq!(q.next().as_deref(), Some("b"));
        assert_eq!(q.next().as_deref(), Some("d"));
    }

    #[test]
    fn cancel_removes_only_queued_entries() {
        let q = JobQueue::new(4);
        q.submit("a");
        q.submit("b");
        assert!(q.remove("a"));
        assert!(!q.remove("a"), "already gone");
        assert!(!q.remove("zzz"));
        assert_eq!(q.next().as_deref(), Some("b"));
    }

    #[test]
    fn drain_stops_admission_and_releases_idle_workers() {
        let q = JobQueue::new(4);
        q.submit("a");
        q.start_drain();
        assert!(matches!(q.submit("late"), SubmitOutcome::Overloaded { .. }));
        // The queued job is still handed out (EOF drain finishes work)...
        assert_eq!(q.next().as_deref(), Some("a"));
        // ...then workers are released.
        assert_eq!(q.next(), None);
    }

    #[test]
    fn parked_workers_wake_on_drain() {
        let q = std::sync::Arc::new(JobQueue::new(2));
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.next())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.start_drain();
        assert_eq!(worker.join().unwrap(), None);
    }
}
