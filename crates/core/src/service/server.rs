//! The resilient DSE server: worker pool, request loop, and the glue
//! between the queue, the journal, the warm cache, and the sweep
//! engine.
//!
//! One [`Server`] owns:
//!
//! - a bounded [`JobQueue`] (backpressure by shedding),
//! - the job table (every record the journal persists),
//! - one process-wide [`CandidateCache`] shared by every job, and
//! - the state dir holding the journal, the cache, and one sweep
//!   checkpoint per job.
//!
//! [`Server::serve`] is generic over the transport (`BufRead` in,
//! `Write` out) so integration tests drive an in-process server over
//! plain pipes while the CLI binds it to stdin/stdout.

use std::collections::HashMap;
use std::fs;
use std::io::{BufRead as _, BufReader, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use secureloop_artifact::DurabilityPolicy;

use secureloop_json::Json;
use secureloop_mapper::{
    cancel, CancelToken, CandidateCache, FaultScope, SearchConfig, SearchMode,
};
use secureloop_telemetry::{self as telemetry, Sink};

use crate::annealing::AnnealingConfig;
use crate::cli::RunStatus;
use crate::dse::{evaluate_designs_sweep, pareto_front, SweepOptions};
use crate::error::SecureLoopError;
use crate::report;
use crate::service::job::{AdmissionPolicy, JobRecord, JobSpec, JobState};
use crate::service::persist::{self, ServiceJournal};
use crate::service::protocol::{self, Request};
use crate::service::queue::{JobQueue, SubmitOutcome};
use crate::supervisor::SupervisorConfig;

/// Server knobs; everything has a conservative default.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Where the journal, the cache, and per-job checkpoints live.
    pub state_dir: PathBuf,
    /// Queue bound: submissions past this are shed, never buffered.
    pub queue_depth: usize,
    /// Concurrent jobs (worker threads pulling from the queue).
    pub workers: usize,
    /// Sweep workers *inside* each job (design points in parallel).
    pub job_workers: usize,
    /// Memory budget for the shared candidate cache (`None` =
    /// unbounded).
    pub cache_budget_bytes: Option<usize>,
    /// Per-job budget caps enforced before a job takes a queue slot.
    pub admission: AdmissionPolicy,
    /// Panic/timeout/retry policy handed to every job's sweep.
    pub supervisor: SupervisorConfig,
    /// Mapper exploration strategy for every job (server-level, so all
    /// jobs of one process share cache entries; mirrors the CLI's
    /// `--search-mode`).
    pub search_mode: SearchMode,
    /// Protection scheme applied to jobs that do not choose their own
    /// (mirrors the CLI's `--scheme` on `serve`). `None` keeps each
    /// job's default AES-GCM pricing.
    pub default_scheme: Option<secureloop_crypto::SchemeId>,
    /// Durability policy for every artifact the server persists
    /// (journal, shared cache, per-job checkpoints): fsync discipline
    /// and the retry/backoff budget for transient write errors.
    pub durability: DurabilityPolicy,
}

impl ServiceConfig {
    /// Defaults: queue depth 8, 2 job workers, 1 sweep worker per job,
    /// unbounded cache, default admission and supervision.
    pub fn new(state_dir: impl Into<PathBuf>) -> ServiceConfig {
        ServiceConfig {
            state_dir: state_dir.into(),
            queue_depth: 8,
            workers: 2,
            job_workers: 1,
            cache_budget_bytes: None,
            admission: AdmissionPolicy::default(),
            supervisor: SupervisorConfig::default(),
            search_mode: SearchMode::Guided,
            default_scheme: None,
            durability: DurabilityPolicy::default(),
        }
    }

    /// Set the queue bound (min 1).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Set the number of concurrent jobs.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the sweep worker count inside each job.
    pub fn with_job_workers(mut self, workers: usize) -> Self {
        self.job_workers = workers.max(1);
        self
    }

    /// Budget the shared candidate cache.
    pub fn with_cache_budget_bytes(mut self, bytes: usize) -> Self {
        self.cache_budget_bytes = Some(bytes);
        self
    }

    /// Replace the admission policy.
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Replace the supervisor policy.
    pub fn with_supervisor(mut self, supervisor: SupervisorConfig) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Replace the mapper exploration strategy.
    pub fn with_search_mode(mut self, mode: SearchMode) -> Self {
        self.search_mode = mode;
        self
    }

    /// Set the protection scheme for jobs that do not choose their own.
    pub fn with_default_scheme(mut self, scheme: Option<secureloop_crypto::SchemeId>) -> Self {
        self.default_scheme = scheme;
        self
    }

    /// Replace the artifact durability policy.
    pub fn with_durability(mut self, durability: DurabilityPolicy) -> Self {
        self.durability = durability;
        self
    }
}

struct JobEntry {
    record: JobRecord,
    /// Trips on client cancellation; every in-flight search belonging
    /// to the job observes it at its next chunk boundary.
    token: CancelToken,
}

#[derive(Default)]
struct JobTable {
    /// Admission order, for a stable journal.
    order: Vec<String>,
    map: HashMap<String, JobEntry>,
}

/// Line-oriented writer shared by the control loop, the worker pool,
/// and the progress sink. One event = one line, flushed immediately —
/// clients block on lines, not on buffers.
struct SharedWriter<W: Write> {
    w: Arc<Mutex<W>>,
}

impl<W: Write> Clone for SharedWriter<W> {
    fn clone(&self) -> Self {
        SharedWriter { w: self.w.clone() }
    }
}

impl<W: Write> SharedWriter<W> {
    fn new(w: W) -> Self {
        SharedWriter {
            w: Arc::new(Mutex::new(w)),
        }
    }

    fn send(&self, event: Json) {
        let mut g = self.w.lock().unwrap_or_else(|e| e.into_inner());
        // A gone client must not kill the server (mirrors the binary's
        // BrokenPipe tolerance).
        let _ = writeln!(g, "{event}");
        let _ = g.flush();
    }
}

/// Telemetry sink that forwards every event to the previously
/// installed sink (the CLI's `--trace-out` file, when present) and
/// additionally streams per-design progress to clients: each job-scoped
/// `dse` span becomes a `progress` event on the wire.
struct ProgressSink<W: Write + Send> {
    out: SharedWriter<W>,
    inner: Option<Box<dyn Sink>>,
}

impl<W: Write + Send> Sink for ProgressSink<W> {
    fn write_line(&mut self, line: &str) {
        if let Some(s) = self.inner.as_mut() {
            s.write_line(line);
        }
        // Cheap pre-filter: only per-design dse spans carrying a job
        // scope are worth parsing (mapper chunk events are far too
        // frequent to parse speculatively).
        if !(line.contains("\"phase\":\"dse\"") && line.contains("\"job\":")) {
            return;
        }
        let Ok(v) = Json::parse(line) else { return };
        let (Some(job), Some(design)) = (v["job"].as_str(), v["name"].as_str()) else {
            return;
        };
        let mut ev = Json::obj()
            .field("event", "progress")
            .field("id", job)
            .field("design", design);
        if let Some(outcome) = v["outcome"].as_str() {
            ev = ev.field("outcome", outcome);
        }
        if let Some(us) = v["us"].as_u64() {
            ev = ev.field("us", us);
        }
        self.out.send(ev);
    }

    fn flush(&mut self) {
        if let Some(s) = self.inner.as_mut() {
            s.flush();
        }
    }
}

fn warning(reason: String) -> Json {
    Json::obj()
        .field("event", "warning")
        .field("reason", reason)
}

/// The DSE service. Construct with [`Server::new`] (which restores any
/// journalled state), then hand a transport to [`Server::serve`].
pub struct Server {
    cfg: ServiceConfig,
    cache: Arc<CandidateCache>,
    jobs: Mutex<JobTable>,
    queue: JobQueue,
    resumed: usize,
    /// What state restoration had to work around (empty artifacts,
    /// salvaged journals, backup-generation fallbacks) — emitted as
    /// `warning` events when `serve` starts.
    recovery_warnings: Vec<String>,
    /// Trips when a journal or cache write exhausts its durability
    /// retries: the server keeps running in-memory but exits 2.
    degraded: AtomicBool,
}

impl Server {
    /// Create the state dir (if needed), sweep stale `.tmp` orphans,
    /// reload the journal and the candidate cache, and re-enqueue every
    /// resumable (`Queued`/`Running`) job. Their per-job checkpoints
    /// make the re-runs zero-recomputation.
    ///
    /// # Errors
    ///
    /// [`SecureLoopError::Checkpoint`] when the state dir cannot be
    /// created, or a typed error when an existing journal cannot be
    /// recovered even after record salvage and the `.bak` generation
    /// (an unreadable journal needs operator attention — silently
    /// dropping admitted jobs would be worse). A 0-byte journal (a
    /// crash between create and write) and a corrupted cache file are
    /// *not* errors: the first holds no jobs, the second only costs
    /// recomputation; both leave a recovery warning.
    pub fn new(cfg: ServiceConfig) -> Result<Server, SecureLoopError> {
        fs::create_dir_all(&cfg.state_dir).map_err(|e| SecureLoopError::Checkpoint {
            path: cfg.state_dir.display().to_string(),
            message: format!("create state dir: {e}"),
        })?;
        persist::remove_stale_tmps(&cfg.state_dir);

        let queue = JobQueue::new(cfg.queue_depth);
        let mut table = JobTable::default();
        let mut resumed = 0;
        let mut recovery_warnings = Vec::new();
        let journal_path = persist::journal_path(&cfg.state_dir);
        if journal_path.exists() {
            let journal = match ServiceJournal::load_recovering(&journal_path) {
                Ok(rec) => {
                    recovery_warnings.extend(rec.warnings);
                    rec.value
                }
                Err(SecureLoopError::Artifact(ref a)) if a.is_empty() => {
                    recovery_warnings.push(format!(
                        "journal '{}' is empty (crash between create and write); \
                         treating it as absent",
                        journal_path.display()
                    ));
                    ServiceJournal::default()
                }
                Err(e) => return Err(e),
            };
            for mut record in journal.jobs {
                if record.state.is_resumable() {
                    // `restore`, not `submit`: these jobs were already
                    // admitted by the previous incarnation; shedding
                    // them now would renege on that acceptance.
                    record.state = JobState::Queued;
                    record.cause = None;
                    queue.restore(record.spec.id.clone());
                    resumed += 1;
                }
                table.order.push(record.spec.id.clone());
                table.map.insert(
                    record.spec.id.clone(),
                    JobEntry {
                        record,
                        token: CancelToken::new(),
                    },
                );
            }
        }

        let cache_path = persist::cache_path(&cfg.state_dir);
        let mut cache = if cache_path.exists() {
            match CandidateCache::load_recovering(&cache_path) {
                Ok(rec) => {
                    recovery_warnings.extend(rec.warnings);
                    rec.value
                }
                Err(e) => {
                    recovery_warnings.push(if e.is_empty() {
                        format!(
                            "candidate cache '{}' is empty (crash between create and \
                             write); treating it as absent",
                            cache_path.display()
                        )
                    } else {
                        format!("ignoring candidate cache '{}': {e}", cache_path.display())
                    });
                    CandidateCache::new()
                }
            }
        } else {
            CandidateCache::new()
        };
        if let Some(bytes) = cfg.cache_budget_bytes {
            cache = cache.with_budget_bytes(bytes);
        }

        Ok(Server {
            cfg,
            cache: Arc::new(cache),
            jobs: Mutex::new(table),
            queue,
            resumed,
            recovery_warnings,
            degraded: AtomicBool::new(false),
        })
    }

    /// Jobs re-enqueued from the journal by [`Server::new`].
    pub fn resumed(&self) -> usize {
        self.resumed
    }

    /// The shared candidate cache (tests inspect its stats).
    pub fn cache(&self) -> &CandidateCache {
        &self.cache
    }

    fn table(&self) -> MutexGuard<'_, JobTable> {
        self.jobs.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Serialise the job table to the journal. Holds the table lock
    /// across the write so concurrent transitions cannot interleave a
    /// stale snapshot over a fresh one.
    fn save_journal<W: Write>(&self, out: &SharedWriter<W>) {
        let t = self.table();
        let journal = ServiceJournal {
            jobs: t
                .order
                .iter()
                .filter_map(|id| t.map.get(id))
                .map(|e| e.record.clone())
                .collect(),
        };
        if let Err(e) = journal.save_with(
            &persist::journal_path(&self.cfg.state_dir),
            &self.cfg.durability,
        ) {
            drop(t);
            self.degraded.store(true, Ordering::Relaxed);
            out.send(warning(format!(
                "journal save failed: {e}; continuing in-memory (state will not survive a crash)"
            )));
        }
    }

    /// Run the service over a transport until EOF, a `shutdown`
    /// request, or a process-wide shutdown signal.
    ///
    /// - EOF / `shutdown` op: stop admitting, **drain the queue
    ///   fully**, persist everything, return [`RunStatus::Success`].
    /// - SIGINT/SIGTERM (the process shutdown flag): stop admitting,
    ///   running jobs checkpoint and go back to `Queued`, persist
    ///   everything, return [`RunStatus::Interrupted`] (exit code 3); a
    ///   restarted server resumes them with zero recomputation.
    pub fn serve<R, W>(&self, reader: R, writer: W) -> RunStatus
    where
        R: Read + Send + 'static,
        W: Write + Send + 'static,
    {
        let out = SharedWriter::new(writer);

        // Wrap any pre-installed sink (e.g. `--trace-out`) so every
        // job-scoped dse span also streams to clients as progress.
        let inner = telemetry::take_sink();
        telemetry::install_sink(Box::new(ProgressSink {
            out: out.clone(),
            inner,
        }));

        // The input thread is detached on purpose: a thread blocked in
        // `read_line` cannot be joined on a signal-driven drain, and
        // the process exits right after `serve` returns anyway.
        let (tx, rx) = mpsc::channel::<String>();
        std::thread::spawn(move || {
            for line in BufReader::new(reader).lines() {
                let Ok(line) = line else { break };
                if tx.send(line).is_err() {
                    break;
                }
            }
        });

        out.send(protocol::ready(
            self.resumed,
            self.queue.limit(),
            self.cfg.workers,
        ));
        for w in &self.recovery_warnings {
            out.send(warning(w.clone()));
        }

        std::thread::scope(|s| {
            for _ in 0..self.cfg.workers.max(1) {
                s.spawn(|| {
                    while let Some(id) = self.queue.next() {
                        self.run_job(&id, &out);
                    }
                });
            }
            loop {
                if cancel::shutdown_requested() {
                    break;
                }
                match rx.recv_timeout(Duration::from_millis(100)) {
                    Ok(line) => {
                        let line = line.trim();
                        if line.is_empty() {
                            continue;
                        }
                        if !self.handle_request(line, &out) {
                            break;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            self.queue.start_drain();
            // Scope exit joins the workers: an EOF drain finishes every
            // queued job first; a signal drain exits after the jobs in
            // flight have checkpointed.
        });

        self.save_journal(&out);
        if let Err(e) = self
            .cache
            .save_with(&persist::cache_path(&self.cfg.state_dir), &self.cfg.durability)
        {
            self.degraded.store(true, Ordering::Relaxed);
            out.send(warning(format!("cache save failed: {e}")));
        }
        let resumable = {
            let t = self.table();
            t.map
                .values()
                .filter(|e| e.record.state.is_resumable())
                .count()
        };
        out.send(protocol::shutdown(resumable));

        // Flush-on-drain: the wrapped `--trace-out` sink buffers; the
        // process often exits right after this returns, so flush and
        // drop it now rather than trusting a later teardown to run.
        telemetry::flush_sink();
        drop(telemetry::take_sink());

        if cancel::shutdown_requested() {
            RunStatus::Interrupted
        } else if self.degraded.load(Ordering::Relaxed) {
            // Jobs all ran to completion, but some state never reached
            // disk — exit 2 so operators notice the journal/cache gap.
            RunStatus::Degraded
        } else {
            RunStatus::Success
        }
    }

    /// Returns `false` when the control loop should stop (a `shutdown`
    /// request).
    fn handle_request<W: Write>(&self, line: &str, out: &SharedWriter<W>) -> bool {
        match protocol::parse_request(line) {
            Err(reason) => out.send(protocol::protocol_error(&reason)),
            Ok(Request::Ping) => out.send(protocol::pong()),
            Ok(Request::Stats) => out.send(self.stats_event()),
            Ok(Request::Shutdown) => return false,
            Ok(Request::Cancel(id)) => self.cancel_job(&id, out),
            Ok(Request::Submit(spec)) => self.submit_job(*spec, out),
        }
        true
    }

    fn submit_job<W: Write>(&self, mut spec: JobSpec, out: &SharedWriter<W>) {
        let id = spec.id.clone();
        // A shed id may retry later (that is the point of shedding);
        // any other reuse is a client bug.
        if self
            .table()
            .map
            .get(&id)
            .is_some_and(|e| e.record.state != JobState::Shed)
        {
            out.send(protocol::rejected(&id, "duplicate job id"));
            return;
        }
        // Fill in the server-level default scheme *before* admission so
        // the scheme/engine-class validation applies to what will run,
        // and the journalled spec records the effective scheme.
        if spec.scheme.is_none() {
            spec.scheme = self.cfg.default_scheme;
        }
        if let Err(reason) = self.cfg.admission.admit(&spec) {
            out.send(protocol::rejected(&id, &reason));
            return;
        }

        // Insert the record *before* the queue push so a worker that
        // pops immediately always finds the entry.
        {
            let mut t = self.table();
            if !t.map.contains_key(&id) {
                t.order.push(id.clone());
            }
            t.map.insert(
                id.clone(),
                JobEntry {
                    record: JobRecord::queued(spec),
                    token: CancelToken::new(),
                },
            );
        }
        match self.queue.submit(id.clone()) {
            SubmitOutcome::Accepted { depth } => {
                self.save_journal(out);
                out.send(protocol::accepted(&id, depth));
            }
            SubmitOutcome::Overloaded { depth, limit } => {
                if let Some(e) = self.table().map.get_mut(&id) {
                    e.record.state = JobState::Shed;
                    e.record.cause = Some(format!("queue full ({depth}/{limit}); resubmit later"));
                }
                self.save_journal(out);
                out.send(protocol::overloaded(&id, depth, limit));
            }
        }
    }

    fn cancel_job<W: Write>(&self, id: &str, out: &SharedWriter<W>) {
        let mut t = self.table();
        let Some(e) = t.map.get_mut(id) else {
            drop(t);
            out.send(protocol::rejected(id, "unknown job id"));
            return;
        };
        match e.record.state {
            JobState::Queued if self.queue.remove(id) => {
                e.record.state = JobState::Cancelled;
                e.record.cause = Some("cancelled while queued".into());
                drop(t);
                self.save_journal(out);
                out.send(protocol::cancelled(id));
            }
            // Queued-but-not-in-queue means a worker grabbed it between
            // journal state and pop — treat as running.
            JobState::Queued | JobState::Running => {
                e.token.cancel();
                drop(t);
                out.send(Json::obj().field("event", "cancelling").field("id", id));
            }
            _ => {
                drop(t);
                out.send(protocol::rejected(id, "job already finished"));
            }
        }
    }

    fn stats_event(&self) -> Json {
        let t = self.table();
        let mut jobs = Json::obj();
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Completed,
            JobState::Failed,
            JobState::Poisoned,
            JobState::Cancelled,
            JobState::Shed,
        ] {
            let n = t.map.values().filter(|e| e.record.state == state).count();
            jobs = jobs.field(state.name(), n as u64);
        }
        drop(t);
        Json::obj()
            .field("event", "stats")
            .field("queue_depth", self.queue.len())
            .field("queue_limit", self.queue.limit())
            .field("jobs", jobs)
            .field(
                "cache",
                Json::obj()
                    .field("entries", self.cache.len())
                    .field("approx_bytes", self.cache.approx_bytes())
                    .field("hits", self.cache.hits())
                    .field("misses", self.cache.misses())
                    .field("evictions", self.cache.evictions()),
            )
    }

    /// Transition a job to a terminal (or re-queued) state and persist.
    fn settle<W: Write>(
        &self,
        id: &str,
        state: JobState,
        cause: Option<String>,
        out: &SharedWriter<W>,
    ) {
        {
            let mut t = self.table();
            if let Some(e) = t.map.get_mut(id) {
                e.record.state = state;
                e.record.cause = cause;
            }
        }
        if state.is_terminal() {
            // The sweep checkpoint has served its purpose; a terminal
            // job never resumes.
            let _ = fs::remove_file(persist::job_checkpoint_path(&self.cfg.state_dir, id));
        }
        self.save_journal(out);
    }

    fn run_job<W: Write>(&self, id: &str, out: &SharedWriter<W>) {
        let (spec, token) = {
            let mut t = self.table();
            let Some(e) = t.map.get_mut(id) else { return };
            if e.record.state.is_terminal() {
                // Cancelled (or otherwise settled) while queued.
                return;
            }
            e.record.state = JobState::Running;
            e.record.cause = None;
            (e.record.spec.clone(), e.token.clone())
        };
        self.save_journal(out);
        out.send(protocol::started(id));

        // Every telemetry event this job emits — including from the
        // sweep's own worker threads, which re-enter this scope —
        // carries its id, so the progress stream and any trace file
        // stay attributable per tenant.
        let _scope = telemetry::enter_scope(id.to_string());

        let fail = |reason: String| {
            self.settle(id, JobState::Failed, Some(reason.clone()), out);
            out.send(protocol::result(id, "failed", Json::Null, Some(&reason)));
        };
        let designs = match spec.resolve_designs() {
            Ok(d) => d,
            Err(e) => return fail(e),
        };
        let network = match spec.resolve_workload() {
            Ok(n) => n,
            Err(e) => return fail(e),
        };

        // Budgets mirror the one-shot `secureloop dse` command exactly,
        // so a healthy service job is byte-identical to the same run
        // through the CLI.
        let deadline = spec.deadline_secs.map(Duration::from_secs_f64);
        let annealing = {
            let a = AnnealingConfig::paper_default().with_iterations(spec.iterations.min(300));
            match deadline {
                Some(d) => a.with_deadline(d),
                None => a,
            }
        };
        let search = SearchConfig {
            samples: spec.samples,
            top_k: 4,
            seed: spec.seed,
            threads: 4,
            deadline,
            mode: self.cfg.search_mode,
        };
        let ckpt_path = persist::job_checkpoint_path(&self.cfg.state_dir, id);
        let opts = SweepOptions::new()
            .with_checkpoint(ckpt_path)
            .with_resume(true)
            .with_workers(self.cfg.job_workers)
            .with_supervisor(self.cfg.supervisor)
            .with_shared_cache(Arc::clone(&self.cache))
            .with_cancel(token.clone())
            .with_durability(self.cfg.durability);

        // Chaos hook: a planned fault stays scoped to this job's
        // designated architecture; while armed, other jobs bypass the
        // cache (results unchanged) rather than risk poisoned entries.
        let armed = match spec.fault.as_ref().map(|f| f.to_plan()) {
            None => None,
            Some(Ok(plan)) => Some(FaultScope::inject(plan)),
            Some(Err(e)) => return fail(e),
        };
        let outcome = evaluate_designs_sweep(
            &network,
            &designs,
            spec.algorithm,
            &search,
            &annealing,
            &opts,
        );
        drop(armed);

        let sweep = match outcome {
            Ok(sweep) => sweep,
            Err(e) => return fail(e.to_string()),
        };
        if sweep.degraded_persistence {
            // The job itself ran fine; its checkpoint writes did not.
            self.degraded.store(true, Ordering::Relaxed);
            for w in &sweep.warnings {
                out.send(warning(format!("{id}: {w}")));
            }
        }
        if sweep.interrupted {
            if token.is_cancelled() {
                let cause = "cancelled by client".to_string();
                self.settle(id, JobState::Cancelled, Some(cause.clone()), out);
                out.send(protocol::result(id, "cancelled", Json::Null, Some(&cause)));
            } else {
                // Process-wide drain: the finished design points are
                // checkpointed; back to Queued so a restarted server
                // resumes with zero recomputation.
                self.settle(id, JobState::Queued, None, out);
                out.send(protocol::checkpointed(id));
            }
            return;
        }

        let report = report::sweep_to_json_value(&sweep, &pareto_front(&sweep.results));
        if !sweep.poisoned.is_empty() {
            let cause = sweep
                .poisoned
                .iter()
                .map(|(label, cause)| format!("{label}: {cause}"))
                .collect::<Vec<_>>()
                .join("; ");
            self.settle(id, JobState::Poisoned, Some(cause.clone()), out);
            out.send(protocol::result(id, "poisoned", report, Some(&cause)));
        } else if sweep.results.is_empty() && !sweep.skipped.is_empty() {
            let cause = sweep
                .skipped
                .iter()
                .map(|(label, error)| format!("{label}: {error}"))
                .collect::<Vec<_>>()
                .join("; ");
            self.settle(id, JobState::Failed, Some(cause.clone()), out);
            out.send(protocol::result(id, "failed", report, Some(&cause)));
        } else {
            self.settle(id, JobState::Completed, None, out);
            out.send(protocol::result(id, "completed", report, None));
        }
    }
}
