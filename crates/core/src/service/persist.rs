//! Service-state persistence: the job journal and the state-dir
//! layout.
//!
//! Everything rides on the checkpoint machinery that already survives
//! kill-at-any-instant for sweeps: atomic temp+rename writes, stale
//! `.tmp` cleanup on startup, and per-design [`crate::SweepCheckpoint`]
//! files (one per job) that give a restarted server zero recomputation
//! of completed design points.
//!
//! Layout of `<state_dir>/`:
//!
//! ```text
//! service.json         the job journal (this module)
//! service.cache.json   the process-wide candidate cache
//! <job-id>.ckpt.json   per-job sweep checkpoint (+ sibling .tmp
//!                      during writes, cleaned on startup)
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use secureloop_json::Json;

use crate::error::SecureLoopError;
use crate::service::job::JobRecord;

/// Journal schema version; bumped on incompatible changes.
pub const JOURNAL_VERSION: u64 = 1;

/// The journal file inside a state dir.
pub fn journal_path(state_dir: &Path) -> PathBuf {
    state_dir.join("service.json")
}

/// The persisted candidate cache inside a state dir.
pub fn cache_path(state_dir: &Path) -> PathBuf {
    state_dir.join("service.cache.json")
}

/// The per-job sweep checkpoint inside a state dir. Job ids are
/// validated filesystem-safe at admission
/// ([`crate::service::job::valid_job_id`]).
pub fn job_checkpoint_path(state_dir: &Path, id: &str) -> PathBuf {
    state_dir.join(format!("{id}.ckpt.json"))
}

/// Remove every stale `*.tmp` orphan in the state dir (journal, cache,
/// or per-job checkpoint writes that died between write and rename).
/// Returns how many were removed.
pub fn remove_stale_tmps(state_dir: &Path) -> usize {
    let Ok(entries) = fs::read_dir(state_dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "tmp") && fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// The whole job table, serialised after every state transition so a
/// kill at any instant loses at most the transition in flight — and a
/// job whose `Running` state was journalled but whose result was not
/// simply re-runs from its checkpoint on restart.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceJournal {
    /// Every job the server has seen, in admission order.
    pub jobs: Vec<JobRecord>,
}

impl ServiceJournal {
    /// Serialise the journal.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("version", JOURNAL_VERSION)
            .field("kind", "service-journal")
            .field(
                "jobs",
                Json::Arr(self.jobs.iter().map(JobRecord::to_json).collect()),
            )
    }

    /// Parse a journal written by [`ServiceJournal::to_json`].
    ///
    /// # Errors
    ///
    /// Names the missing or ill-typed field (including version / kind
    /// mismatches).
    pub fn from_json(v: &Json) -> Result<ServiceJournal, String> {
        let version = v["version"]
            .as_u64()
            .ok_or("missing or invalid field 'version'")?;
        if version != JOURNAL_VERSION {
            return Err(format!(
                "unsupported journal version {version} (expected {JOURNAL_VERSION})"
            ));
        }
        if v["kind"].as_str() != Some("service-journal") {
            return Err("missing or invalid field 'kind'".to_string());
        }
        let jobs = v["jobs"]
            .as_array()
            .ok_or("missing or invalid field 'jobs'")?
            .iter()
            .map(JobRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ServiceJournal { jobs })
    }

    /// Write the journal atomically (temp + rename; a failed write
    /// cleans up its temp file).
    ///
    /// # Errors
    ///
    /// [`SecureLoopError::Checkpoint`] on I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), SecureLoopError> {
        let err = |message: String| SecureLoopError::Checkpoint {
            path: path.display().to_string(),
            message,
        };
        let tmp = path.with_extension("tmp");
        let result = fs::write(&tmp, self.to_json().pretty())
            .map_err(|e| err(format!("write: {e}")))
            .and_then(|()| fs::rename(&tmp, path).map_err(|e| err(format!("rename: {e}"))));
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Load a journal from disk.
    ///
    /// # Errors
    ///
    /// [`SecureLoopError::Checkpoint`] when the file cannot be read,
    /// parsed, or validated.
    pub fn load(path: &Path) -> Result<ServiceJournal, SecureLoopError> {
        let err = |message: String| SecureLoopError::Checkpoint {
            path: path.display().to_string(),
            message,
        };
        let text = fs::read_to_string(path).map_err(|e| err(format!("read: {e}")))?;
        let v = Json::parse(&text).map_err(|e| err(format!("parse: {e}")))?;
        ServiceJournal::from_json(&v).map_err(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Algorithm;
    use crate::service::job::{JobSpec, JobState};

    fn record(id: &str, state: JobState) -> JobRecord {
        JobRecord {
            spec: JobSpec {
                id: id.into(),
                workload: "alexnet".into(),
                designs: vec![],
                algorithm: Algorithm::CryptOptCross,
                samples: 100,
                iterations: 10,
                seed: 1,
                deadline_secs: None,
                scheme: None,
                fault: None,
            },
            state,
            cause: None,
        }
    }

    #[test]
    fn journal_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("sl-journal-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = journal_path(&dir);
        let journal = ServiceJournal {
            jobs: vec![
                record("a", JobState::Completed),
                record("b", JobState::Running),
                record("c", JobState::Shed),
            ],
        };
        journal.save(&path).unwrap();
        assert!(!path.with_extension("tmp").exists());
        let back = ServiceJournal::load(&path).unwrap();
        assert_eq!(back, journal);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmps_are_swept_but_real_state_is_kept() {
        let dir = std::env::temp_dir().join(format!("sl-tmps-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = journal_path(&dir);
        ServiceJournal::default().save(&path).unwrap();
        fs::write(dir.join("service.tmp"), "{torn").unwrap();
        fs::write(dir.join("job-9.ckpt.tmp"), "{torn").unwrap();
        assert_eq!(remove_stale_tmps(&dir), 2);
        assert!(path.exists(), "the journal survives the sweep");
        assert_eq!(remove_stale_tmps(&dir), 0, "idempotent");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_and_kind_are_enforced() {
        let bad = Json::parse(r#"{"version": 99, "kind": "service-journal", "jobs": []}"#).unwrap();
        assert!(ServiceJournal::from_json(&bad)
            .unwrap_err()
            .contains("version 99"));
        let bad = Json::parse(r#"{"version": 1, "kind": "dse-sweep", "jobs": []}"#).unwrap();
        assert!(ServiceJournal::from_json(&bad)
            .unwrap_err()
            .contains("kind"));
    }
}
