//! Service-state persistence: the job journal and the state-dir
//! layout.
//!
//! Everything rides on the checkpoint machinery that already survives
//! kill-at-any-instant for sweeps: atomic temp+rename writes, stale
//! `.tmp` cleanup on startup, and per-design [`crate::SweepCheckpoint`]
//! files (one per job) that give a restarted server zero recomputation
//! of completed design points.
//!
//! Layout of `<state_dir>/`:
//!
//! ```text
//! service.json         the job journal (this module)
//! service.cache.json   the process-wide candidate cache
//! <job-id>.ckpt.json   per-job sweep checkpoint (+ sibling .tmp
//!                      during writes, cleaned on startup)
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use secureloop_artifact::{self as artifact, DurabilityPolicy, Recovered};
use secureloop_json::Json;

use crate::error::SecureLoopError;
use crate::service::job::JobRecord;

/// Journal schema version; bumped on incompatible changes.
pub const JOURNAL_VERSION: u64 = 1;

/// The journal file inside a state dir.
pub fn journal_path(state_dir: &Path) -> PathBuf {
    state_dir.join("service.json")
}

/// The persisted candidate cache inside a state dir.
pub fn cache_path(state_dir: &Path) -> PathBuf {
    state_dir.join("service.cache.json")
}

/// The per-job sweep checkpoint inside a state dir. Job ids are
/// validated filesystem-safe at admission
/// ([`crate::service::job::valid_job_id`]).
pub fn job_checkpoint_path(state_dir: &Path, id: &str) -> PathBuf {
    state_dir.join(format!("{id}.ckpt.json"))
}

/// Remove every stale `*.tmp` orphan in the state dir (journal, cache,
/// or per-job checkpoint writes that died between write and rename).
/// Returns how many were removed.
pub fn remove_stale_tmps(state_dir: &Path) -> usize {
    let Ok(entries) = fs::read_dir(state_dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "tmp") && fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// The whole job table, serialised after every state transition so a
/// kill at any instant loses at most the transition in flight — and a
/// job whose `Running` state was journalled but whose result was not
/// simply re-runs from its checkpoint on restart.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceJournal {
    /// Every job the server has seen, in admission order.
    pub jobs: Vec<JobRecord>,
}

impl ServiceJournal {
    /// Serialise the journal.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("version", JOURNAL_VERSION)
            .field("kind", "service-journal")
            .field(
                "jobs",
                Json::Arr(self.jobs.iter().map(JobRecord::to_json).collect()),
            )
    }

    /// Parse a journal written by [`ServiceJournal::to_json`].
    ///
    /// # Errors
    ///
    /// Names the missing or ill-typed field (including version / kind
    /// mismatches).
    pub fn from_json(v: &Json) -> Result<ServiceJournal, String> {
        let version = v["version"]
            .as_u64()
            .ok_or("missing or invalid field 'version'")?;
        if version != JOURNAL_VERSION {
            return Err(format!(
                "unsupported journal version {version} (expected {JOURNAL_VERSION})"
            ));
        }
        if v["kind"].as_str() != Some("service-journal") {
            return Err("missing or invalid field 'kind'".to_string());
        }
        let jobs = v["jobs"]
            .as_array()
            .ok_or("missing or invalid field 'jobs'")?
            .iter()
            .map(JobRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ServiceJournal { jobs })
    }

    /// Write the journal durably with the default [`DurabilityPolicy`]
    /// (checksummed envelope, temp + fsync + `.bak` rotation + rename;
    /// a failed write cleans up its temp file).
    ///
    /// # Errors
    ///
    /// [`SecureLoopError::Artifact`] on I/O failure (after retries).
    pub fn save(&self, path: &Path) -> Result<(), SecureLoopError> {
        self.save_with(path, &DurabilityPolicy::default())
    }

    /// [`ServiceJournal::save`] with an explicit [`DurabilityPolicy`].
    pub fn save_with(&self, path: &Path, policy: &DurabilityPolicy) -> Result<(), SecureLoopError> {
        artifact::write_durable(path, &self.to_json().pretty(), policy)
            .map_err(SecureLoopError::Artifact)
    }

    /// Load a journal from disk, strictly.
    ///
    /// # Errors
    ///
    /// [`SecureLoopError::Checkpoint`] when the contents fail
    /// validation; [`SecureLoopError::Artifact`] with a typed `Empty`
    /// for a 0-byte file (crash between create and write — callers
    /// treat it as absent-with-warning) or `Io` when it cannot be read.
    pub fn load(path: &Path) -> Result<ServiceJournal, SecureLoopError> {
        let err = |message: String| SecureLoopError::Checkpoint {
            path: path.display().to_string(),
            message,
        };
        let (payload, integrity) =
            artifact::read_verified(path).map_err(SecureLoopError::Artifact)?;
        if let artifact::Integrity::Damaged(reason) = integrity {
            return Err(err(format!("envelope damaged: {reason}")));
        }
        let v = Json::parse(&payload).map_err(|e| err(format!("parse: {e}")))?;
        ServiceJournal::from_json(&v).map_err(err)
    }

    /// Load a journal through the salvage ladder: strict parse, then
    /// record-by-record recovery of a damaged file (intact job records
    /// kept, the corrupt tail dropped), then the `.bak` last-known-good
    /// generation.
    ///
    /// # Errors
    ///
    /// As [`ServiceJournal::load`], when every rung fails.
    pub fn load_recovering(path: &Path) -> Result<Recovered<ServiceJournal>, SecureLoopError> {
        artifact::load_recoverable(
            path,
            |payload| {
                let v = Json::parse(payload).map_err(|e| format!("parse: {e}"))?;
                ServiceJournal::from_json(&v)
            },
            Self::salvage,
        )
        .map_err(SecureLoopError::Artifact)
    }

    /// Recover intact job records from a damaged journal payload. The
    /// header (version, kind) must still be readable so a wrong-schema
    /// file is never record-mined into the current schema.
    fn salvage(payload: &str) -> Option<(ServiceJournal, String)> {
        if artifact::salvage_u64_field(payload, "version") != Some(JOURNAL_VERSION) {
            return None;
        }
        if artifact::salvage_string_field(payload, "kind").as_deref() != Some("service-journal") {
            return None;
        }
        let mut jobs = Vec::new();
        let mut dropped = 0usize;
        for item in artifact::salvage_array_items(payload, "jobs") {
            match Json::parse(&item)
                .map_err(|e| e.to_string())
                .and_then(|v| JobRecord::from_json(&v))
            {
                Ok(job) => jobs.push(job),
                Err(_) => dropped += 1,
            }
        }
        if jobs.is_empty() {
            return None;
        }
        let kept = jobs.len();
        Some((
            ServiceJournal { jobs },
            format!("kept {kept} intact job record(s), dropped {dropped} damaged"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Algorithm;
    use crate::service::job::{JobSpec, JobState};

    fn record(id: &str, state: JobState) -> JobRecord {
        JobRecord {
            spec: JobSpec {
                id: id.into(),
                workload: "alexnet".into(),
                designs: vec![],
                algorithm: Algorithm::CryptOptCross,
                samples: 100,
                iterations: 10,
                seed: 1,
                deadline_secs: None,
                scheme: None,
                fault: None,
            },
            state,
            cause: None,
        }
    }

    #[test]
    fn journal_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("sl-journal-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = journal_path(&dir);
        let journal = ServiceJournal {
            jobs: vec![
                record("a", JobState::Completed),
                record("b", JobState::Running),
                record("c", JobState::Shed),
            ],
        };
        journal.save(&path).unwrap();
        assert!(!path.with_extension("tmp").exists());
        let back = ServiceJournal::load(&path).unwrap();
        assert_eq!(back, journal);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmps_are_swept_but_real_state_is_kept() {
        let dir = std::env::temp_dir().join(format!("sl-tmps-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = journal_path(&dir);
        ServiceJournal::default().save(&path).unwrap();
        fs::write(dir.join("service.tmp"), "{torn").unwrap();
        fs::write(dir.join("job-9.ckpt.tmp"), "{torn").unwrap();
        assert_eq!(remove_stale_tmps(&dir), 2);
        assert!(path.exists(), "the journal survives the sweep");
        assert_eq!(remove_stale_tmps(&dir), 0, "idempotent");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_journal_salvages_intact_job_records() {
        let dir = std::env::temp_dir().join(format!("sl-journal-salvage-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = journal_path(&dir);
        let journal = ServiceJournal {
            jobs: vec![
                record("a", JobState::Completed),
                record("b", JobState::Running),
            ],
        };
        // Tear mid-way through the second job record; footer lost.
        let text = journal.to_json().pretty();
        let cut = text.rfind("\"b\"").unwrap() + 6;
        fs::write(&path, &text[..cut]).unwrap();

        assert!(ServiceJournal::load(&path).is_err(), "strict load rejects");
        let rec = ServiceJournal::load_recovering(&path).unwrap();
        assert_eq!(rec.value.jobs.len(), 1);
        assert_eq!(rec.value.jobs[0].spec.id, "a");
        assert!(rec.warnings[0].contains("salvaged"), "{:?}", rec.warnings);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_journal_falls_back_to_backup_generation() {
        let dir = std::env::temp_dir().join(format!("sl-journal-bak-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = journal_path(&dir);
        let gen1 = ServiceJournal {
            jobs: vec![record("a", JobState::Completed)],
        };
        gen1.save(&path).unwrap();
        let gen2 = ServiceJournal {
            jobs: vec![
                record("a", JobState::Completed),
                record("b", JobState::Running),
            ],
        };
        gen2.save(&path).unwrap();
        // Obliterate the primary beyond salvage (header unreadable).
        fs::write(&path, "\u{0}garbage").unwrap();
        let rec = ServiceJournal::load_recovering(&path).unwrap();
        assert_eq!(rec.value, gen1, "previous generation recovered");
        assert!(rec.warnings[0].contains("backup"), "{:?}", rec.warnings);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_journal_file_is_typed_as_empty() {
        let dir = std::env::temp_dir().join(format!("sl-journal-empty-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = journal_path(&dir);
        fs::write(&path, "").unwrap();
        let err = ServiceJournal::load(&path).unwrap_err();
        assert!(
            matches!(err, SecureLoopError::Artifact(ref a) if a.is_empty()),
            "got {err:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_and_kind_are_enforced() {
        let bad = Json::parse(r#"{"version": 99, "kind": "service-journal", "jobs": []}"#).unwrap();
        assert!(ServiceJournal::from_json(&bad)
            .unwrap_err()
            .contains("version 99"));
        let bad = Json::parse(r#"{"version": 1, "kind": "dse-sweep", "jobs": []}"#).unwrap();
        assert!(ServiceJournal::from_json(&bad)
            .unwrap_err()
            .contains("kind"));
    }
}
