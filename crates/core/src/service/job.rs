//! Job specifications, the job lifecycle state machine, and admission
//! control.

use std::time::Duration;

use secureloop_arch::Architecture;
use secureloop_crypto::SchemeId;
use secureloop_json::Json;
use secureloop_mapper::FaultPlan;
use secureloop_workload::Network;

use crate::dse::{apply_scheme, fig16_design_space};
use crate::scheduler::Algorithm;

/// Job ids become file names (`<state_dir>/<id>.ckpt.json`), so they
/// are restricted to a filesystem-safe alphabet.
pub fn valid_job_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// An injected fault a test client attaches to its job (a chaos hook:
/// the soak suite uses it to plan poison jobs). Scoped to one
/// architecture so it cannot leak into other tenants' searches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// `fail` | `nan` | `panic` | `stall` | `io_error`.
    pub kind: String,
    /// Layers the fault applies to.
    pub layers: Vec<String>,
    /// Design label the fault is scoped to (required: an unscoped
    /// fault would sabotage other tenants running the same layers).
    pub arch: String,
    /// Stall duration in milliseconds (`stall` only).
    pub stall_ms: u64,
}

impl FaultSpec {
    /// Build the mapper-level [`FaultPlan`], always arch-scoped.
    ///
    /// # Errors
    ///
    /// An unknown `kind`.
    pub fn to_plan(&self) -> Result<FaultPlan, String> {
        let layers = self.layers.iter().cloned();
        let plan = match self.kind.as_str() {
            "fail" => FaultPlan::fail(layers),
            "nan" => FaultPlan::nan_cost(layers),
            "panic" => FaultPlan::panic(layers),
            "stall" => FaultPlan::stall(layers, Duration::from_millis(self.stall_ms.max(1))),
            "io_error" => FaultPlan::io_error(layers, 2),
            other => return Err(format!("unknown fault kind '{other}'")),
        };
        Ok(plan.for_arch(self.arch.clone()))
    }

    /// Serialise for the journal.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("kind", self.kind.as_str())
            .field(
                "layers",
                Json::Arr(self.layers.iter().map(|l| Json::from(l.as_str())).collect()),
            )
            .field("arch", self.arch.as_str())
            .field("stall_ms", self.stall_ms)
    }

    /// Parse a [`FaultSpec`] from a submission or the journal.
    ///
    /// # Errors
    ///
    /// Names the missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<FaultSpec, String> {
        let kind = v["kind"]
            .as_str()
            .ok_or("fault needs a string 'kind'")?
            .to_string();
        let layers = v["layers"]
            .as_array()
            .ok_or("fault needs a 'layers' array")?
            .iter()
            .map(|l| {
                l.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "fault layers must be strings".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let arch = v["arch"]
            .as_str()
            .ok_or("fault needs an 'arch' design label (unscoped faults would hit other tenants)")?
            .to_string();
        let stall_ms = v["stall_ms"].as_u64().unwrap_or(50);
        let spec = FaultSpec {
            kind,
            layers,
            arch,
            stall_ms,
        };
        spec.to_plan()?; // validate the kind eagerly
        Ok(spec)
    }
}

/// One job: what a client asked the server to explore.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Client-chosen id (see [`valid_job_id`]).
    pub id: String,
    /// Workload name (`alexnet`, `resnet18`, ... — the CLI zoo).
    pub workload: String,
    /// Design labels from the Fig. 16 space; empty = the full space.
    pub designs: Vec<String>,
    /// Scheduling algorithm.
    pub algorithm: Algorithm,
    /// Mapper samples per layer.
    pub samples: usize,
    /// Annealing iterations (capped like the `dse` command).
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional per-layer wall-clock deadline in seconds. A deadline
    /// trades determinism for latency exactly as in the one-shot CLI.
    pub deadline_secs: Option<f64>,
    /// Optional protection scheme re-pricing the resolved designs
    /// (`None` keeps the space's default AES-GCM pricing; mirrors the
    /// CLI's `--scheme`).
    pub scheme: Option<SchemeId>,
    /// Optional injected fault (chaos-test hook).
    pub fault: Option<FaultSpec>,
}

impl JobSpec {
    /// Resolve the design labels against the Fig. 16 space, in space
    /// order (empty = the whole space, exactly like `secureloop dse`),
    /// then re-price under the job's protection scheme if one was
    /// requested.
    ///
    /// With an explicit design list, a scheme that cannot be realised
    /// on a named design's engine class is an error (the client asked
    /// for a contradiction). With the full space, unsupported designs
    /// are filtered out instead — "the whole space under scheme S"
    /// means the supported part of it.
    ///
    /// # Errors
    ///
    /// Names the first unknown label or invalid scheme/class pairing.
    pub fn resolve_designs(&self) -> Result<Vec<Architecture>, String> {
        let space = fig16_design_space();
        let resolved: Vec<Architecture> = if self.designs.is_empty() {
            space
        } else {
            self.designs
                .iter()
                .map(|want| {
                    space
                        .iter()
                        .find(|a| a.name() == want)
                        .cloned()
                        .ok_or_else(|| format!("unknown design '{want}'"))
                })
                .collect::<Result<_, _>>()?
        };
        let Some(scheme) = self.scheme else {
            return Ok(resolved);
        };
        if self.designs.is_empty() {
            let kept: Vec<Architecture> = resolved
                .iter()
                .filter_map(|a| apply_scheme(a, scheme).ok())
                .collect();
            if kept.is_empty() {
                return Err(format!("scheme '{scheme}' supports no design in the space"));
            }
            Ok(kept)
        } else {
            resolved
                .iter()
                .map(|a| apply_scheme(a, scheme).map_err(|e| format!("design '{}': {e}", a.name())))
                .collect()
        }
    }

    /// Resolve the workload name against the model zoo.
    ///
    /// # Errors
    ///
    /// An unknown workload name.
    pub fn resolve_workload(&self) -> Result<Network, String> {
        crate::cli::workload(&self.workload).map_err(|e| e.to_string())
    }

    /// Serialise for the journal (and for echoing back to clients).
    pub fn to_json(&self) -> Json {
        let mut v = Json::obj()
            .field("id", self.id.as_str())
            .field("workload", self.workload.as_str())
            .field(
                "designs",
                Json::Arr(
                    self.designs
                        .iter()
                        .map(|d| Json::from(d.as_str()))
                        .collect(),
                ),
            )
            .field("algorithm", self.algorithm.name())
            .field("samples", self.samples as u64)
            .field("iterations", self.iterations as u64)
            .field("seed", self.seed);
        if let Some(d) = self.deadline_secs {
            v = v.field("deadline_secs", d);
        }
        if let Some(s) = self.scheme {
            v = v.field("scheme", s.name());
        }
        if let Some(f) = &self.fault {
            v = v.field("fault", f.to_json());
        }
        v
    }

    /// Parse a [`JobSpec`] from a `submit` request or the journal.
    /// Absent budget fields take the one-shot CLI defaults.
    ///
    /// # Errors
    ///
    /// Names the missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let id = v["id"]
            .as_str()
            .ok_or("submit needs a string 'id'")?
            .to_string();
        if !valid_job_id(&id) {
            return Err(format!(
                "invalid job id '{id}' (1-64 chars from [A-Za-z0-9_-])"
            ));
        }
        let workload = v["workload"]
            .as_str()
            .ok_or("submit needs a string 'workload'")?
            .to_string();
        let designs = match &v["designs"] {
            Json::Null => Vec::new(),
            list => list
                .as_array()
                .ok_or("'designs' must be an array of labels")?
                .iter()
                .map(|d| {
                    d.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "design labels must be strings".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        let algorithm = match v["algorithm"].as_str() {
            None => Algorithm::CryptOptCross,
            Some(name) => Algorithm::from_name(name)
                .or_else(|| match name {
                    "unsecure" => Some(Algorithm::Unsecure),
                    "crypt-tile-single" => Some(Algorithm::CryptTileSingle),
                    "crypt-opt-single" => Some(Algorithm::CryptOptSingle),
                    "crypt-opt-cross" => Some(Algorithm::CryptOptCross),
                    _ => None,
                })
                .ok_or_else(|| format!("unknown algorithm '{name}'"))?,
        };
        let deadline_secs = match &v["deadline_secs"] {
            Json::Null => None,
            d => {
                let secs = d.as_f64().ok_or("'deadline_secs' must be a number")?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("'deadline_secs' must be positive and finite".to_string());
                }
                Some(secs)
            }
        };
        let scheme = match &v["scheme"] {
            Json::Null => None,
            s => {
                let name = s.as_str().ok_or("'scheme' must be a string")?;
                Some(SchemeId::from_name(name).ok_or_else(|| {
                    format!("unknown scheme '{name}' (expected none | aes-gcm | seculator | seda)")
                })?)
            }
        };
        let fault = match &v["fault"] {
            Json::Null => None,
            f => Some(FaultSpec::from_json(f)?),
        };
        Ok(JobSpec {
            id,
            workload,
            designs,
            algorithm,
            samples: v["samples"].as_usize().unwrap_or(3000),
            iterations: v["iterations"].as_usize().unwrap_or(1000),
            seed: v["seed"].as_u64().unwrap_or(1),
            deadline_secs,
            scheme,
            fault,
        })
    }
}

/// The job lifecycle state machine:
///
/// ```text
///            submit                    pop               sweep resolves
/// (client) ──────────▶ Queued ───────────────▶ Running ─────────────────▶ Completed
///     │                  │                       │  │                        Failed
///     │ queue full       │ cancel                │  │ cancel token            Poisoned
///     ▼                  ▼                       │  ▼
///    Shed            Cancelled                   │ Cancelled
///                                                │ SIGINT/SIGTERM drain
///                                                ▼
///                                             Queued   (checkpointed; re-runs on restart)
/// ```
///
/// `Shed` is terminal and out-of-band: a shed job never held a queue
/// slot. `Queued` and `Running` are the resumable states — a restarted
/// server re-enqueues both (a crash can strike mid-run, which is
/// exactly what the per-design checkpoint protects).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted and waiting for a worker.
    Queued,
    /// A worker is sweeping it.
    Running,
    /// Every design point resolved; none poisoned.
    Completed,
    /// The sweep errored as a whole, or every design point failed.
    Failed,
    /// At least one design point was quarantined by the supervisor.
    Poisoned,
    /// The client cancelled it (queued or mid-run).
    Cancelled,
    /// Rejected by backpressure: the queue was full at submission.
    Shed,
}

impl JobState {
    /// Wire / journal name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Poisoned => "poisoned",
            JobState::Cancelled => "cancelled",
            JobState::Shed => "shed",
        }
    }

    /// Inverse of [`JobState::name`].
    pub fn from_name(name: &str) -> Option<JobState> {
        Some(match name {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "completed" => JobState::Completed,
            "failed" => JobState::Failed,
            "poisoned" => JobState::Poisoned,
            "cancelled" => JobState::Cancelled,
            "shed" => JobState::Shed,
            _ => return None,
        })
    }

    /// Whether the state can still change.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed
                | JobState::Failed
                | JobState::Poisoned
                | JobState::Cancelled
                | JobState::Shed
        )
    }

    /// Whether a restarted server should re-enqueue the job.
    pub fn is_resumable(self) -> bool {
        matches!(self, JobState::Queued | JobState::Running)
    }
}

/// One journalled job: its spec, where it is in the lifecycle, and —
/// for `Failed`/`Poisoned`/`Cancelled` — why.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// What was submitted.
    pub spec: JobSpec,
    /// Where the job is in the lifecycle.
    pub state: JobState,
    /// Failure / poison / cancellation detail.
    pub cause: Option<String>,
}

impl JobRecord {
    /// A freshly admitted job.
    pub fn queued(spec: JobSpec) -> JobRecord {
        JobRecord {
            spec,
            state: JobState::Queued,
            cause: None,
        }
    }

    /// Serialise for the journal.
    pub fn to_json(&self) -> Json {
        let mut v = Json::obj()
            .field("spec", self.spec.to_json())
            .field("state", self.state.name());
        if let Some(cause) = &self.cause {
            v = v.field("cause", cause.as_str());
        }
        v
    }

    /// Parse a [`JobRecord`] written by [`JobRecord::to_json`].
    ///
    /// # Errors
    ///
    /// Names the missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<JobRecord, String> {
        let state_name = v["state"].as_str().ok_or("record needs a 'state'")?;
        let state = JobState::from_name(state_name)
            .ok_or_else(|| format!("unknown job state '{state_name}'"))?;
        Ok(JobRecord {
            spec: JobSpec::from_json(&v["spec"])?,
            state,
            cause: v["cause"].as_str().map(str::to_string),
        })
    }
}

/// Per-job budget caps the server enforces *before* a job takes a
/// queue slot. Budgets flow into the existing
/// [`secureloop_mapper::SearchConfig`] unchanged — admission only
/// bounds them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Maximum mapper samples per layer.
    pub max_samples: usize,
    /// Maximum design points per job.
    pub max_designs: usize,
    /// Maximum per-layer deadline a job may request, in seconds.
    pub max_deadline_secs: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_samples: 20_000,
            max_designs: 18,
            max_deadline_secs: 300.0,
        }
    }
}

impl AdmissionPolicy {
    /// Validate a spec against the caps and the catalogue (workload
    /// and design labels must resolve, the fault kind must exist).
    ///
    /// # Errors
    ///
    /// A client-facing reason string for the typed `rejected` response.
    pub fn admit(&self, spec: &JobSpec) -> Result<(), String> {
        if spec.samples == 0 {
            return Err("'samples' must be at least 1".to_string());
        }
        if spec.samples > self.max_samples {
            return Err(format!(
                "samples {} exceeds the admission cap {}",
                spec.samples, self.max_samples
            ));
        }
        let designs = spec.resolve_designs()?;
        if designs.len() > self.max_designs {
            return Err(format!(
                "{} designs exceeds the admission cap {}",
                designs.len(),
                self.max_designs
            ));
        }
        if let Some(secs) = spec.deadline_secs {
            if secs > self.max_deadline_secs {
                return Err(format!(
                    "deadline {secs}s exceeds the admission cap {}s",
                    self.max_deadline_secs
                ));
            }
        }
        spec.resolve_workload()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            id: "job-1".into(),
            workload: "alexnet".into(),
            designs: vec!["14x12/16kB/Pipelined".into()],
            algorithm: Algorithm::CryptOptSingle,
            samples: 200,
            iterations: 20,
            seed: 7,
            deadline_secs: None,
            scheme: None,
            fault: None,
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let mut s = spec();
        s.fault = Some(FaultSpec {
            kind: "panic".into(),
            layers: vec!["conv1".into()],
            arch: "14x12/16kB/Pipelined".into(),
            stall_ms: 50,
        });
        s.deadline_secs = Some(2.5);
        s.scheme = Some(SchemeId::Seculator);
        let back = JobSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unknown_scheme_names_are_rejected_at_parse() {
        let v = spec().to_json().field("scheme", "rot13");
        let err = JobSpec::from_json(&v).unwrap_err();
        assert!(err.contains("unknown scheme 'rot13'"), "got: {err}");
    }

    #[test]
    fn schemes_reprice_resolved_designs() {
        use secureloop_crypto::EngineClass;
        // Explicit design + supported scheme: re-priced in place.
        let mut s = spec();
        s.scheme = Some(SchemeId::Seculator);
        let designs = s.resolve_designs().unwrap();
        let cc = designs[0].crypto().unwrap();
        assert_eq!(cc.scheme, SchemeId::Seculator);
        assert_eq!(cc.tag_bits, 32);
        // `none` strips crypto entirely.
        s.scheme = Some(SchemeId::None);
        assert!(s.resolve_designs().unwrap()[0].crypto().is_none());
        // Full space under SeDA keeps only the Parallel designs.
        s.designs.clear();
        s.scheme = Some(SchemeId::Seda);
        let seda = s.resolve_designs().unwrap();
        assert!(!seda.is_empty());
        assert!(seda
            .iter()
            .all(|a| a.crypto().unwrap().class == EngineClass::Parallel));
    }

    #[test]
    fn admission_rejects_invalid_scheme_class_pairings() {
        let policy = AdmissionPolicy::default();
        // The explicitly named design is Pipelined; SeDA cannot be
        // realised on a fully-pipelined core.
        let mut s = spec();
        s.scheme = Some(SchemeId::Seda);
        let err = policy.admit(&s).unwrap_err();
        assert!(
            err.contains("does not support the Pipelined engine class"),
            "got: {err}"
        );
        // The same scheme over the whole space is admissible (the
        // unsupported half is filtered).
        s.designs.clear();
        assert!(policy.admit(&s).is_ok());
    }

    #[test]
    fn record_round_trips_with_state_and_cause() {
        let mut r = JobRecord::queued(spec());
        r.state = JobState::Poisoned;
        r.cause = Some("panicked: injected chaos".into());
        let back = JobRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn job_ids_are_filesystem_safe() {
        assert!(valid_job_id("job-1_A"));
        assert!(!valid_job_id(""));
        assert!(!valid_job_id("../etc/passwd"));
        assert!(!valid_job_id("a b"));
        assert!(!valid_job_id(&"x".repeat(65)));
    }

    #[test]
    fn state_machine_names_round_trip() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Completed,
            JobState::Failed,
            JobState::Poisoned,
            JobState::Cancelled,
            JobState::Shed,
        ] {
            assert_eq!(JobState::from_name(s.name()), Some(s));
        }
        assert!(JobState::Queued.is_resumable() && !JobState::Queued.is_terminal());
        assert!(JobState::Running.is_resumable());
        assert!(JobState::Shed.is_terminal() && !JobState::Shed.is_resumable());
    }

    #[test]
    fn admission_enforces_the_caps() {
        let policy = AdmissionPolicy {
            max_samples: 500,
            max_designs: 2,
            max_deadline_secs: 10.0,
        };
        assert!(policy.admit(&spec()).is_ok());

        let mut too_many_samples = spec();
        too_many_samples.samples = 501;
        assert!(policy
            .admit(&too_many_samples)
            .unwrap_err()
            .contains("admission cap"));

        let mut too_many_designs = spec();
        too_many_designs.designs.clear(); // full 18-design space
        assert!(policy
            .admit(&too_many_designs)
            .unwrap_err()
            .contains("admission cap"));

        let mut too_long = spec();
        too_long.deadline_secs = Some(11.0);
        assert!(policy.admit(&too_long).unwrap_err().contains("deadline"));

        let mut bad_workload = spec();
        bad_workload.workload = "gpt-17".into();
        assert!(policy.admit(&bad_workload).is_err());

        let mut bad_design = spec();
        bad_design.designs = vec!["9x9/1kB/abacus".into()];
        assert!(policy
            .admit(&bad_design)
            .unwrap_err()
            .contains("unknown design"));
    }

    #[test]
    fn unscoped_faults_are_rejected() {
        let v = Json::parse(r#"{"kind":"panic","layers":["conv1"]}"#).unwrap();
        let err = FaultSpec::from_json(&v).unwrap_err();
        assert!(err.contains("arch"), "{err}");
    }
}
