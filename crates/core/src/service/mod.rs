//! DSE as a service: a long-running, multi-tenant job server.
//!
//! `secureloop serve` turns the one-shot CLI into a resident process
//! speaking a JSON-Lines protocol on stdin/stdout (see [`protocol`]).
//! Clients submit jobs — a workload, a design list, and a search budget
//! — and the server runs each one through the full supervised sweep
//! engine ([`crate::dse::evaluate_designs_sweep`]). The robustness
//! properties the one-shot CLI earned per invocation are promoted to
//! per-job for the lifetime of the process:
//!
//! * **Bounded queue, typed shedding** — a FIFO [`queue::JobQueue`]
//!   with a configurable depth. A submission that would overflow it is
//!   *shed* with a typed `overloaded` response, never buffered
//!   unboundedly ([`job::JobState::Shed`]).
//! * **Admission control** — [`job::AdmissionPolicy`] rejects jobs
//!   whose sample, design-count, or deadline budgets exceed the
//!   server's caps before they consume a queue slot.
//! * **Per-job supervision and isolation** — every design point runs
//!   under [`crate::supervisor::run_supervised_cancellable`]; one
//!   tenant's panicking or stalling design is quarantined (reported
//!   `poisoned` with its cause) without disturbing other tenants, whose
//!   results stay byte-identical to running alone.
//! * **Crash-safe lifecycle** — the `Queued → Running →
//!   Completed/Failed/Poisoned/Cancelled` state machine (plus the
//!   out-of-band `Shed`) is journalled to `<state_dir>/service.json`
//!   and each job checkpoints per design point, so a killed server
//!   resumes in-flight jobs on restart with zero recomputation of
//!   completed designs.
//! * **One warm cache** — a process-wide
//!   [`secureloop_mapper::CandidateCache`] with a byte budget and LRU
//!   eviction is shared across every job and persisted across
//!   restarts.
//! * **Graceful drain** — SIGINT/SIGTERM stops admission, lets running
//!   jobs finish or checkpoint (via the process-wide shutdown flag the
//!   mapper polls at chunk boundaries), flushes the cache, journal and
//!   telemetry sink, and exits with code 3. Client EOF instead drains
//!   the queue *fully* (every queued job runs) before a clean exit.

pub mod job;
pub mod persist;
pub mod protocol;
pub mod queue;
pub mod server;

pub use job::{AdmissionPolicy, FaultSpec, JobRecord, JobSpec, JobState};
pub use persist::ServiceJournal;
pub use protocol::Request;
pub use queue::{JobQueue, SubmitOutcome};
pub use server::{Server, ServiceConfig};
