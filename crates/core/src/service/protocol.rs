//! The JSON-Lines wire protocol: one JSON object per line, both ways.
//!
//! Requests (client → server), keyed by `"op"`:
//!
//! ```text
//! {"op":"submit","id":"job-1","workload":"alexnet",
//!  "designs":["14x12/16kB/Pipelined"],   // optional; absent = full Fig. 16 space
//!  "algorithm":"crypt-opt-cross",        // optional
//!  "samples":500,"iterations":100,"seed":1,   // optional budgets
//!  "deadline_secs":5.0,                  // optional
//!  "fault":{"kind":"panic","layers":["fc0"],"arch":"..."}}  // chaos hook
//! {"op":"cancel","id":"job-1"}
//! {"op":"stats"}
//! {"op":"ping"}
//! {"op":"shutdown"}                      // graceful: drain the queue fully, then exit
//! ```
//!
//! Responses (server → client), keyed by `"event"`:
//!
//! ```text
//! {"event":"ready","resumed":N,"queue_limit":N,"workers":N}
//! {"event":"accepted","id":...,"queue_depth":N}
//! {"event":"overloaded","id":...,"queue_depth":N,"queue_limit":N}   // typed shed
//! {"event":"rejected","id":...,"reason":"..."}                      // admission / malformed
//! {"event":"started","id":...}
//! {"event":"progress","id":...,"design":...,"outcome":...}          // one per design point
//! {"event":"result","id":...,"status":"completed|failed|poisoned|cancelled",
//!  "report":{...},"cause":"..."?}
//! {"event":"checkpointed","id":...}      // drain interrupted it; resumes on restart
//! {"event":"cancelled","id":...}         // a queued job was cancelled in place
//! {"event":"stats",...}
//! {"event":"pong"}
//! {"event":"error","reason":"..."}       // unparseable request line
//! {"event":"shutdown","resumable":N}     // last line before exit
//! ```

use secureloop_json::Json;

use crate::service::job::JobSpec;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job.
    Submit(Box<JobSpec>),
    /// Cancel a queued or running job by id.
    Cancel(String),
    /// Ask for queue / job-table / cache statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Graceful shutdown: drain the queue fully, then exit.
    Shutdown,
}

/// Parse one request line.
///
/// # Errors
///
/// A client-facing reason string (sent back as an `error` or
/// `rejected` event).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| format!("not a JSON object: {e}"))?;
    let op = v["op"].as_str().ok_or("request needs a string 'op'")?;
    match op {
        "submit" => Ok(Request::Submit(Box::new(JobSpec::from_json(&v)?))),
        "cancel" => {
            let id = v["id"].as_str().ok_or("cancel needs a string 'id'")?;
            Ok(Request::Cancel(id.to_string()))
        }
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op '{other}'")),
    }
}

/// `{"event":"accepted",...}` — the job holds a queue slot.
pub fn accepted(id: &str, queue_depth: usize) -> Json {
    Json::obj()
        .field("event", "accepted")
        .field("id", id)
        .field("queue_depth", queue_depth as u64)
}

/// `{"event":"overloaded",...}` — the typed shed response: the queue
/// was full, the job was NOT buffered, try again later.
pub fn overloaded(id: &str, queue_depth: usize, queue_limit: usize) -> Json {
    Json::obj()
        .field("event", "overloaded")
        .field("id", id)
        .field("queue_depth", queue_depth as u64)
        .field("queue_limit", queue_limit as u64)
}

/// `{"event":"rejected",...}` — admission control or a malformed spec.
pub fn rejected(id: &str, reason: &str) -> Json {
    Json::obj()
        .field("event", "rejected")
        .field("id", id)
        .field("reason", reason)
}

/// `{"event":"error",...}` — the request line itself was unusable.
pub fn protocol_error(reason: &str) -> Json {
    Json::obj().field("event", "error").field("reason", reason)
}

/// `{"event":"started",...}` — a worker picked the job up.
pub fn started(id: &str) -> Json {
    Json::obj().field("event", "started").field("id", id)
}

/// `{"event":"result",...}` — terminal job outcome with its report.
pub fn result(id: &str, status: &str, report: Json, cause: Option<&str>) -> Json {
    let mut v = Json::obj()
        .field("event", "result")
        .field("id", id)
        .field("status", status)
        .field("report", report);
    if let Some(cause) = cause {
        v = v.field("cause", cause);
    }
    v
}

/// `{"event":"checkpointed",...}` — a drain interrupted the job after
/// its finished design points were checkpointed; a restarted server
/// resumes it with zero recomputation.
pub fn checkpointed(id: &str) -> Json {
    Json::obj().field("event", "checkpointed").field("id", id)
}

/// `{"event":"cancelled",...}` — a still-queued job was cancelled.
pub fn cancelled(id: &str) -> Json {
    Json::obj().field("event", "cancelled").field("id", id)
}

/// `{"event":"pong"}`.
pub fn pong() -> Json {
    Json::obj().field("event", "pong")
}

/// `{"event":"ready",...}` — first line after startup; `resumed` is
/// how many journalled jobs were re-enqueued.
pub fn ready(resumed: usize, queue_limit: usize, workers: usize) -> Json {
    Json::obj()
        .field("event", "ready")
        .field("resumed", resumed as u64)
        .field("queue_limit", queue_limit as u64)
        .field("workers", workers as u64)
}

/// `{"event":"shutdown",...}` — last line before exit; `resumable` is
/// how many jobs will resume on restart.
pub fn shutdown(resumable: usize) -> Json {
    Json::obj()
        .field("event", "shutdown")
        .field("resumable", resumable as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_parse_to_requests() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#), Ok(Request::Ping));
        assert_eq!(parse_request(r#"{"op":"stats"}"#), Ok(Request::Stats));
        assert_eq!(parse_request(r#"{"op":"shutdown"}"#), Ok(Request::Shutdown));
        assert_eq!(
            parse_request(r#"{"op":"cancel","id":"j1"}"#),
            Ok(Request::Cancel("j1".into()))
        );
        match parse_request(r#"{"op":"submit","id":"j1","workload":"alexnet"}"#).unwrap() {
            Request::Submit(spec) => {
                assert_eq!(spec.id, "j1");
                assert_eq!(spec.samples, 3000, "defaults mirror the CLI");
            }
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn bad_lines_report_why() {
        assert!(parse_request("not json").unwrap_err().contains("JSON"));
        assert!(parse_request(r#"{"id":"x"}"#).unwrap_err().contains("op"));
        assert!(parse_request(r#"{"op":"dance"}"#)
            .unwrap_err()
            .contains("dance"));
        assert!(
            parse_request(r#"{"op":"submit","id":"../x","workload":"alexnet"}"#)
                .unwrap_err()
                .contains("invalid job id")
        );
    }

    #[test]
    fn responses_are_single_line_json() {
        for v in [
            accepted("j", 3),
            overloaded("j", 8, 8),
            rejected("j", "too big"),
            protocol_error("bad line"),
            started("j"),
            result("j", "completed", Json::obj(), None),
            checkpointed("j"),
            cancelled("j"),
            pong(),
            ready(2, 8, 2),
            shutdown(1),
        ] {
            let line = v.to_string();
            assert!(!line.contains('\n'));
            assert!(Json::parse(&line).is_ok());
            assert!(line.contains("\"event\""));
        }
    }
}
