//! The end-to-end scheduler: Table 1's algorithms over whole networks.

use std::fmt;

use secureloop_arch::Architecture;
use secureloop_authblock::OverheadBreakdown;
use secureloop_loopnest::{EnergyBreakdown, Mapping};
use secureloop_mapper::SearchConfig;
use secureloop_workload::Network;

use crate::annealing::{anneal_segment, AnnealingConfig};
use crate::candidates::{find_candidates, CandidateSet};
use crate::segment::{evaluate_segment, OverheadCache, StrategyMode};

/// The scheduling algorithms of paper Table 1, plus the unsecure
/// baseline used for normalisation in Figs. 11, 13–15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// No cryptographic engine: the plain accelerator (normalisation
    /// baseline).
    Unsecure,
    /// Crypt-aware mapper + tile-as-an-AuthBlock + rehash between
    /// coupled layers; no cross-layer tuning (prior work's strategy).
    CryptTileSingle,
    /// Crypt-aware mapper + optimal AuthBlock assignment per layer.
    CryptOptSingle,
    /// Optimal AuthBlock assignment + simulated-annealing cross-layer
    /// fine-tuning — the full SecureLoop scheduler.
    CryptOptCross,
}

impl Algorithm {
    /// The three secure algorithms, in Table 1 order.
    pub const SECURE: [Algorithm; 3] = [
        Algorithm::CryptTileSingle,
        Algorithm::CryptOptSingle,
        Algorithm::CryptOptCross,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Unsecure => "Unsecure",
            Algorithm::CryptTileSingle => "Crypt-Tile-Single",
            Algorithm::CryptOptSingle => "Crypt-Opt-Single",
            Algorithm::CryptOptCross => "Crypt-Opt-Cross",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-layer outcome within a [`NetworkSchedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerResult {
    /// Layer name.
    pub name: String,
    /// Latency in cycles (crypto overheads applied).
    pub latency_cycles: u64,
    /// Energy in pJ.
    pub energy_pj: f64,
    /// Extra off-chip bits from authentication charged to this layer.
    pub extra_bits: u64,
    /// Off-chip data bits (without authentication overhead).
    pub data_dram_bits: u64,
    /// MACs.
    pub macs: u64,
    /// PE-array utilisation of the chosen schedule.
    pub utilization: f64,
    /// The chosen loopnest.
    pub mapping: Mapping,
    /// Component-wise energy.
    pub energy: EnergyBreakdown,
}

/// A fully scheduled network.
#[derive(Debug, Clone)]
pub struct NetworkSchedule {
    /// Network name.
    pub network: String,
    /// Algorithm that produced it.
    pub algorithm: Algorithm,
    /// One-line architecture summary.
    pub arch_summary: String,
    /// Per-layer results, in execution order.
    pub layers: Vec<LayerResult>,
    /// Total latency in cycles.
    pub total_latency_cycles: u64,
    /// Total energy in pJ.
    pub total_energy_pj: f64,
    /// Total additional off-chip traffic from authentication.
    pub overhead: OverheadBreakdown,
}

impl NetworkSchedule {
    /// Energy-delay product (pJ·cycles).
    pub fn edp(&self) -> f64 {
        self.total_energy_pj * self.total_latency_cycles as f64
    }

    /// Total MACs across layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Component-wise energy summed over layers.
    pub fn energy_breakdown(&self) -> EnergyBreakdown {
        let mut total = EnergyBreakdown::default();
        for l in &self.layers {
            total.mac_pj += l.energy.mac_pj;
            total.rf_pj += l.energy.rf_pj;
            total.glb_pj += l.energy.glb_pj;
            total.noc_pj += l.energy.noc_pj;
            total.dram_pj += l.energy.dram_pj;
            total.crypto_pj += l.energy.crypto_pj;
        }
        total
    }

    /// Total off-chip traffic in bits, data + authentication overhead.
    pub fn total_dram_bits(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.data_dram_bits + l.extra_bits)
            .sum()
    }
}

/// The SecureLoop scheduler: architecture + search budgets.
#[derive(Debug, Clone)]
pub struct Scheduler {
    arch: Architecture,
    search: SearchConfig,
    annealing: AnnealingConfig,
}

impl Scheduler {
    /// A scheduler with the paper's default budgets (top-k = 6,
    /// 1000 SA iterations).
    pub fn new(arch: Architecture) -> Self {
        Scheduler {
            arch,
            search: SearchConfig::paper_default(),
            annealing: AnnealingConfig::paper_default(),
        }
    }

    /// Replace the mapper budget.
    pub fn with_search(mut self, search: SearchConfig) -> Self {
        self.search = search;
        self
    }

    /// Replace the annealing budget.
    pub fn with_annealing(mut self, annealing: AnnealingConfig) -> Self {
        self.annealing = annealing;
        self
    }

    /// The architecture being scheduled.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// Step 1 only: the per-layer top-k candidates for `algorithm`
    /// (the unsecure baseline searches without the crypto throttle).
    pub fn candidates(&self, network: &Network, algorithm: Algorithm) -> CandidateSet {
        let arch = self.arch_for(algorithm);
        find_candidates(network, &arch, &self.search)
    }

    fn arch_for(&self, algorithm: Algorithm) -> Architecture {
        match algorithm {
            Algorithm::Unsecure => self.arch.clone().without_crypto(),
            _ => self.arch.clone(),
        }
    }

    /// Schedule `network` with `algorithm`.
    ///
    /// # Panics
    ///
    /// Panics if the mapper finds no valid schedule for some layer
    /// (increase [`SearchConfig::samples`]).
    pub fn schedule(&self, network: &Network, algorithm: Algorithm) -> NetworkSchedule {
        let arch = self.arch_for(algorithm);
        let candidates = find_candidates(network, &arch, &self.search);
        self.schedule_with_candidates(network, algorithm, &candidates)
    }

    /// Schedule every algorithm (the unsecure baseline plus Table 1's
    /// three), sharing the step-1 mapper output within each family —
    /// the secure algorithms reuse one candidate set; the unsecure
    /// baseline searches without the crypto throttle.
    pub fn schedule_all(&self, network: &Network) -> [NetworkSchedule; 4] {
        let unsec_c = self.candidates(network, Algorithm::Unsecure);
        let sec_c = self.candidates(network, Algorithm::CryptOptCross);
        [
            self.schedule_with_candidates(network, Algorithm::Unsecure, &unsec_c),
            self.schedule_with_candidates(network, Algorithm::CryptTileSingle, &sec_c),
            self.schedule_with_candidates(network, Algorithm::CryptOptSingle, &sec_c),
            self.schedule_with_candidates(network, Algorithm::CryptOptCross, &sec_c),
        ]
    }

    /// Schedule with precomputed step-1 candidates (reuses the mapper
    /// output across algorithms — the candidates must come from
    /// [`Scheduler::candidates`] for the same algorithm family).
    pub fn schedule_with_candidates(
        &self,
        network: &Network,
        algorithm: Algorithm,
        candidates: &CandidateSet,
    ) -> NetworkSchedule {
        let arch = self.arch_for(algorithm);
        let mut layers: Vec<Option<LayerResult>> = vec![None; network.len()];
        let mut overhead = OverheadBreakdown::default();
        let mut cache = OverheadCache::new();

        for seg in network.segments() {
            let (choice, seg_eval) = match algorithm {
                Algorithm::Unsecure => {
                    // No authentication: best candidate per layer, no
                    // extra bits.
                    let picks: Vec<_> = seg
                        .layers
                        .iter()
                        .map(|&li| candidates.per_layer[li].best().clone())
                        .collect();
                    let evals: Vec<_> = picks.iter().map(|(_, e)| e.clone()).collect();
                    (
                        vec![0; seg.layers.len()],
                        crate::segment::SegmentEvaluation {
                            extra_bits: vec![0; seg.layers.len()],
                            breakdown: OverheadBreakdown::default(),
                            total_latency: evals.iter().map(|e| e.latency_cycles).sum(),
                            total_energy: evals.iter().map(|e| e.energy_pj).sum(),
                            layer_evals: evals,
                        },
                    )
                }
                Algorithm::CryptTileSingle | Algorithm::CryptOptSingle => {
                    let mode = if algorithm == Algorithm::CryptTileSingle {
                        StrategyMode::TileRehash
                    } else {
                        StrategyMode::Optimal
                    };
                    let picks: Vec<_> = seg
                        .layers
                        .iter()
                        .map(|&li| candidates.per_layer[li].best().clone())
                        .collect();
                    let e = evaluate_segment(network, &arch, &seg.layers, &picks, mode, &mut cache);
                    (vec![0; seg.layers.len()], e)
                }
                Algorithm::CryptOptCross => {
                    let out = anneal_segment(
                        network,
                        &arch,
                        &seg.layers,
                        candidates,
                        &self.annealing,
                        &mut cache,
                    );
                    (out.choice, out.eval)
                }
            };

            overhead.add(&seg_eval.breakdown);
            for (pos, &li) in seg.layers.iter().enumerate() {
                let layer = &network.layers()[li];
                let eval = &seg_eval.layer_evals[pos];
                let extra = seg_eval.extra_bits[pos];
                let mapping = candidates.per_layer[li].options[choice[pos]].0.clone();
                layers[li] = Some(LayerResult {
                    name: layer.name().to_string(),
                    latency_cycles: eval.latency_cycles,
                    energy_pj: eval.energy_pj,
                    extra_bits: extra,
                    data_dram_bits: eval.dram_total_bits - extra,
                    macs: layer.macs(),
                    utilization: eval.utilization,
                    mapping,
                    energy: eval.energy,
                });
            }
        }

        let layers: Vec<LayerResult> = layers
            .into_iter()
            .map(|l| l.expect("every layer belongs to exactly one segment"))
            .collect();
        NetworkSchedule {
            network: network.name().to_string(),
            algorithm,
            arch_summary: arch.summary(),
            total_latency_cycles: layers.iter().map(|l| l.latency_cycles).sum(),
            total_energy_pj: layers.iter().map(|l| l.energy_pj).sum(),
            layers,
            overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secureloop_crypto::{CryptoConfig, EngineClass};
    use secureloop_workload::zoo;

    fn quick_scheduler(secure: bool) -> Scheduler {
        let mut arch = Architecture::eyeriss_base();
        if secure {
            arch = arch.with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
        }
        Scheduler::new(arch)
            .with_search(SearchConfig::quick())
            .with_annealing(AnnealingConfig::quick())
    }

    #[test]
    fn algorithm_ordering_on_alexnet() {
        let net = zoo::alexnet_conv();
        let s = quick_scheduler(true);
        let unsec = s.schedule(&net, Algorithm::Unsecure);
        let tile = s.schedule(&net, Algorithm::CryptTileSingle);
        let opt = s.schedule(&net, Algorithm::CryptOptSingle);
        let cross = s.schedule(&net, Algorithm::CryptOptCross);

        // Secure designs are never faster than the unsecure baseline.
        assert!(tile.total_latency_cycles >= unsec.total_latency_cycles);
        // Each scheduler step improves (or maintains) the previous one
        // (paper Fig. 11a ordering).
        assert!(
            opt.total_latency_cycles <= tile.total_latency_cycles,
            "opt {} vs tile {}",
            opt.total_latency_cycles,
            tile.total_latency_cycles
        );
        assert!(cross.total_latency_cycles <= opt.total_latency_cycles);
        // Traffic ordering too (Fig. 11b).
        assert!(opt.overhead.total_bits() <= tile.overhead.total_bits());
        // Unsecure has no overhead.
        assert_eq!(unsec.overhead.total_bits(), 0);
        assert!(unsec.layers.iter().all(|l| l.extra_bits == 0));
    }

    #[test]
    fn schedule_reports_every_layer() {
        let net = zoo::alexnet_conv();
        let s = quick_scheduler(true);
        let r = s.schedule(&net, Algorithm::CryptOptSingle);
        assert_eq!(r.layers.len(), 5);
        assert_eq!(
            r.total_latency_cycles,
            r.layers.iter().map(|l| l.latency_cycles).sum::<u64>()
        );
        assert_eq!(r.total_macs(), net.total_macs());
        assert!(r.edp() > 0.0);
        assert!(r.total_dram_bits() > 0);
    }

    #[test]
    fn schedule_all_matches_individual_runs() {
        let net = zoo::alexnet_conv();
        let s = quick_scheduler(true);
        let [u, t, o, c] = s.schedule_all(&net);
        assert_eq!(u.algorithm, Algorithm::Unsecure);
        assert_eq!(
            t.total_latency_cycles,
            s.schedule(&net, Algorithm::CryptTileSingle).total_latency_cycles
        );
        assert!(c.total_latency_cycles <= o.total_latency_cycles);
    }

    #[test]
    fn unsecure_baseline_strips_crypto() {
        let net = zoo::alexnet_conv();
        let s = quick_scheduler(true);
        let r = s.schedule(&net, Algorithm::Unsecure);
        assert!(r.arch_summary.contains("unsecure"));
    }

    #[test]
    fn algorithm_display_names() {
        assert_eq!(Algorithm::CryptTileSingle.to_string(), "Crypt-Tile-Single");
        assert_eq!(Algorithm::SECURE.len(), 3);
    }
}
