//! The end-to-end scheduler: Table 1's algorithms over whole networks.
//!
//! # Failure isolation
//!
//! One infeasible layer no longer aborts a network schedule: each layer
//! gets a [`LayerOutcome`], failed layers are recorded and skipped, and
//! the segments they belong to are split into maximal runs of
//! schedulable layers (cross-layer AuthBlock optimisation happens
//! within each run). Degraded layers — produced by a fallback rung of
//! the mapper's ladder, cut short by a deadline, or forced onto the
//! tile-as-AuthBlock strategy — are scheduled but flagged, so reports
//! can surface exactly how much of the result is below full quality.

use std::fmt;
use std::sync::Arc;

use secureloop_arch::Architecture;
use secureloop_authblock::OverheadBreakdown;
use secureloop_loopnest::{EnergyBreakdown, Evaluation, Mapping, SearchSpaceKey};
use secureloop_mapper::{CandidateCache, FeedbackStore, SearchConfig, SearchMode, SearchTier};
use secureloop_telemetry::{self as telemetry, Counter, Timer};
use secureloop_workload::Network;

use crate::annealing::{anneal_segment, AnnealingConfig};
use crate::candidates::{find_candidates_cached, CandidateSet};
use crate::error::SecureLoopError;
use crate::segment::{evaluate_segment, OverheadCache, SegmentEvaluation, StrategyMode};

static SCHEDULES: Counter = Counter::new("scheduler.schedules");
static LAYERS_SCHEDULED: Counter = Counter::new("scheduler.layers_scheduled");
static LAYERS_DEGRADED: Counter = Counter::new("scheduler.layers_degraded");
static LAYERS_FAILED: Counter = Counter::new("scheduler.layers_failed");
static SCHEDULE_TIMER: Timer = Timer::new("scheduler.schedule");

/// The scheduling algorithms of paper Table 1, plus the unsecure
/// baseline used for normalisation in Figs. 11, 13–15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// No cryptographic engine: the plain accelerator (normalisation
    /// baseline).
    Unsecure,
    /// Crypt-aware mapper + tile-as-an-AuthBlock + rehash between
    /// coupled layers; no cross-layer tuning (prior work's strategy).
    CryptTileSingle,
    /// Crypt-aware mapper + optimal AuthBlock assignment per layer.
    CryptOptSingle,
    /// Optimal AuthBlock assignment + simulated-annealing cross-layer
    /// fine-tuning — the full SecureLoop scheduler.
    CryptOptCross,
}

impl Algorithm {
    /// The three secure algorithms, in Table 1 order.
    pub const SECURE: [Algorithm; 3] = [
        Algorithm::CryptTileSingle,
        Algorithm::CryptOptSingle,
        Algorithm::CryptOptCross,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Unsecure => "Unsecure",
            Algorithm::CryptTileSingle => "Crypt-Tile-Single",
            Algorithm::CryptOptSingle => "Crypt-Opt-Single",
            Algorithm::CryptOptCross => "Crypt-Opt-Cross",
        }
    }

    /// Parse a display name back into an algorithm (the inverse of
    /// [`Algorithm::name`], used by checkpoint deserialisation).
    pub fn from_name(name: &str) -> Option<Algorithm> {
        match name {
            "Unsecure" => Some(Algorithm::Unsecure),
            "Crypt-Tile-Single" => Some(Algorithm::CryptTileSingle),
            "Crypt-Opt-Single" => Some(Algorithm::CryptOptSingle),
            "Crypt-Opt-Cross" => Some(Algorithm::CryptOptCross),
            _ => None,
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How one layer fared within a [`NetworkSchedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerOutcome {
    /// Scheduled at the requested search quality.
    Scheduled,
    /// Scheduled, but through a fallback rung of the degradation
    /// ladder.
    Degraded {
        /// Which fallback(s) produced the result.
        reason: String,
    },
    /// No usable mapping was found: the layer is absent from
    /// [`NetworkSchedule::layers`].
    Failed {
        /// The search error that killed it.
        error: String,
    },
}

impl LayerOutcome {
    /// Whether the layer made it into the schedule (possibly degraded).
    pub fn is_scheduled(&self) -> bool {
        !matches!(self, LayerOutcome::Failed { .. })
    }

    /// Short label for reports: `scheduled`, `degraded` or `failed`.
    pub fn label(&self) -> &'static str {
        match self {
            LayerOutcome::Scheduled => "scheduled",
            LayerOutcome::Degraded { .. } => "degraded",
            LayerOutcome::Failed { .. } => "failed",
        }
    }
}

/// Per-layer outcome within a [`NetworkSchedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerResult {
    /// Layer name.
    pub name: String,
    /// Latency in cycles (crypto overheads applied).
    pub latency_cycles: u64,
    /// Energy in pJ.
    pub energy_pj: f64,
    /// Extra off-chip bits from authentication charged to this layer.
    pub extra_bits: u64,
    /// Off-chip data bits (without authentication overhead).
    pub data_dram_bits: u64,
    /// MACs.
    pub macs: u64,
    /// PE-array utilisation of the chosen schedule.
    pub utilization: f64,
    /// The chosen loopnest.
    pub mapping: Mapping,
    /// Component-wise energy.
    pub energy: EnergyBreakdown,
}

/// A fully scheduled network.
#[derive(Debug, Clone)]
pub struct NetworkSchedule {
    /// Network name.
    pub network: String,
    /// Algorithm that produced it.
    pub algorithm: Algorithm,
    /// One-line architecture summary.
    pub arch_summary: String,
    /// Per-layer results for the *scheduled* layers, in execution
    /// order. Failed layers are absent (see
    /// [`NetworkSchedule::outcomes`]).
    pub layers: Vec<LayerResult>,
    /// One `(layer name, outcome)` per network layer, in execution
    /// order — including the failed ones.
    pub outcomes: Vec<(String, LayerOutcome)>,
    /// Total latency in cycles (scheduled layers only).
    pub total_latency_cycles: u64,
    /// Total energy in pJ (scheduled layers only).
    pub total_energy_pj: f64,
    /// Total additional off-chip traffic from authentication.
    pub overhead: OverheadBreakdown,
}

impl NetworkSchedule {
    /// Energy-delay product (pJ·cycles).
    pub fn edp(&self) -> f64 {
        self.total_energy_pj * self.total_latency_cycles as f64
    }

    /// Total MACs across scheduled layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Layers scheduled at full quality.
    pub fn scheduled_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, o)| matches!(o, LayerOutcome::Scheduled))
            .count()
    }

    /// Layers scheduled through a fallback rung.
    pub fn degraded_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, o)| matches!(o, LayerOutcome::Degraded { .. }))
            .count()
    }

    /// Layers with no usable mapping.
    pub fn failed_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, o)| matches!(o, LayerOutcome::Failed { .. }))
            .count()
    }

    /// Whether every layer was scheduled at full quality.
    pub fn is_complete(&self) -> bool {
        self.failed_count() == 0
    }

    /// Component-wise energy summed over layers.
    pub fn energy_breakdown(&self) -> EnergyBreakdown {
        let mut total = EnergyBreakdown::default();
        for l in &self.layers {
            total.mac_pj += l.energy.mac_pj;
            total.rf_pj += l.energy.rf_pj;
            total.glb_pj += l.energy.glb_pj;
            total.noc_pj += l.energy.noc_pj;
            total.dram_pj += l.energy.dram_pj;
            total.crypto_pj += l.energy.crypto_pj;
        }
        total
    }

    /// Total off-chip traffic in bits, data + authentication overhead.
    pub fn total_dram_bits(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.data_dram_bits + l.extra_bits)
            .sum()
    }
}

/// The SecureLoop scheduler: architecture + search budgets.
#[derive(Debug, Clone)]
pub struct Scheduler {
    arch: Architecture,
    search: SearchConfig,
    annealing: AnnealingConfig,
    cache: Option<Arc<CandidateCache>>,
    feedback: Arc<FeedbackStore>,
}

impl Scheduler {
    /// A scheduler with the paper's default budgets (top-k = 6,
    /// 1000 SA iterations).
    pub fn new(arch: Architecture) -> Self {
        Scheduler {
            arch,
            search: SearchConfig::paper_default(),
            annealing: AnnealingConfig::paper_default(),
            cache: None,
            feedback: Arc::new(FeedbackStore::new()),
        }
    }

    /// Replace the mapper budget.
    pub fn with_search(mut self, search: SearchConfig) -> Self {
        self.search = search;
        self
    }

    /// Replace the annealing budget.
    pub fn with_annealing(mut self, annealing: AnnealingConfig) -> Self {
        self.annealing = annealing;
        self
    }

    /// Attach a shared cross-design candidate cache: step-1 searches
    /// consult it before computing and populate it on a miss. One cache
    /// instance may serve many schedulers (a whole DSE sweep)
    /// concurrently.
    pub fn with_candidate_cache(mut self, cache: Arc<CandidateCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Share an annealing-feedback store with this scheduler. Under
    /// [`SearchMode::Guided`] the scheduler records which candidate each
    /// cross-layer annealing run chose and re-ranks later candidate
    /// lists for the same search space so proven survivors sort first.
    /// One store may serve many schedulers (a whole DSE sweep), letting
    /// feedback transfer between design points that share search
    /// spaces. Schedulers built without this carry a private store.
    pub fn with_feedback(mut self, feedback: Arc<FeedbackStore>) -> Self {
        self.feedback = feedback;
        self
    }

    /// The architecture being scheduled.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The annealing-feedback store consulted under guided search.
    pub fn feedback(&self) -> &Arc<FeedbackStore> {
        &self.feedback
    }

    /// Step 1 only: the per-layer top-k candidates for `algorithm`
    /// (the unsecure baseline searches without the crypto throttle).
    pub fn candidates(&self, network: &Network, algorithm: Algorithm) -> CandidateSet {
        let arch = self.arch_for(algorithm);
        let mut set = find_candidates_cached(network, &arch, &self.search, self.cache.as_deref());
        self.apply_feedback(network, &arch, &mut set);
        set
    }

    /// Re-rank each layer's candidate list by recorded annealing wins
    /// (guided mode only). Runs *after* the candidate-cache lookup, so
    /// cached entries stay feedback-free and the cache key need not
    /// encode feedback state.
    fn apply_feedback(&self, network: &Network, arch: &Architecture, set: &mut CandidateSet) {
        if self.search.mode != SearchMode::Guided || self.feedback.is_empty() {
            return;
        }
        for (layer, c) in network.layers().iter().zip(set.per_layer.iter_mut()) {
            if c.options.len() > 1 {
                let key = SearchSpaceKey::of(layer, arch);
                self.feedback.rerank(&key, &mut c.options);
            }
        }
    }

    fn arch_for(&self, algorithm: Algorithm) -> Architecture {
        match algorithm {
            Algorithm::Unsecure => self.arch.clone().without_crypto(),
            _ => self.arch.clone(),
        }
    }

    /// Schedule `network` with `algorithm`.
    ///
    /// # Errors
    ///
    /// Fails with [`SecureLoopError::Schedule`] only when *no* layer of
    /// the network yields a usable mapping. Individual infeasible
    /// layers are isolated as [`LayerOutcome::Failed`] instead.
    pub fn schedule(
        &self,
        network: &Network,
        algorithm: Algorithm,
    ) -> Result<NetworkSchedule, SecureLoopError> {
        let candidates = self.candidates(network, algorithm);
        self.schedule_with_candidates(network, algorithm, &candidates)
    }

    /// Schedule every algorithm (the unsecure baseline plus Table 1's
    /// three), sharing the step-1 mapper output within each family —
    /// the secure algorithms reuse one candidate set; the unsecure
    /// baseline searches without the crypto throttle.
    ///
    /// # Errors
    ///
    /// Fails when any algorithm schedules zero layers (see
    /// [`Scheduler::schedule`]).
    pub fn schedule_all(&self, network: &Network) -> Result<[NetworkSchedule; 4], SecureLoopError> {
        let unsec_c = self.candidates(network, Algorithm::Unsecure);
        let sec_c = self.candidates(network, Algorithm::CryptOptCross);
        Ok([
            self.schedule_with_candidates(network, Algorithm::Unsecure, &unsec_c)?,
            self.schedule_with_candidates(network, Algorithm::CryptTileSingle, &sec_c)?,
            self.schedule_with_candidates(network, Algorithm::CryptOptSingle, &sec_c)?,
            self.schedule_with_candidates(network, Algorithm::CryptOptCross, &sec_c)?,
        ])
    }

    /// Schedule with precomputed step-1 candidates (reuses the mapper
    /// output across algorithms — the candidates must come from
    /// [`Scheduler::candidates`] for the same algorithm family).
    ///
    /// # Errors
    ///
    /// Fails with [`SecureLoopError::Schedule`] only when no layer has
    /// any candidate; per-layer failures are isolated via
    /// [`LayerOutcome::Failed`].
    pub fn schedule_with_candidates(
        &self,
        network: &Network,
        algorithm: Algorithm,
        candidates: &CandidateSet,
    ) -> Result<NetworkSchedule, SecureLoopError> {
        SCHEDULES.incr();
        let mut span = telemetry::span(
            "scheduler",
            format!("{}/{}", network.name(), algorithm.name()),
        )
        .with_timer(&SCHEDULE_TIMER);
        let arch = self.arch_for(algorithm);
        // Tag the schedule (and thus every search under it) with its
        // protection scheme so traces can be sliced per backend.
        span.add_field(
            "scheme",
            arch.crypto().map(|c| c.scheme.name()).unwrap_or("none"),
        );
        let mut layers: Vec<Option<LayerResult>> = vec![None; network.len()];
        let mut outcomes: Vec<(String, LayerOutcome)> = network
            .layers()
            .iter()
            .map(|l| (l.name().to_string(), LayerOutcome::Scheduled))
            .collect();
        let mut overhead = OverheadBreakdown::default();
        let mut cache = OverheadCache::new();

        for seg in network.segments() {
            // Split the segment into maximal runs of schedulable layers;
            // a failed layer breaks tensor coupling on both sides, so
            // its neighbours are rehashed at the run boundary exactly as
            // at a normal segment boundary.
            let mut runs: Vec<Vec<usize>> = Vec::new();
            let mut current: Vec<usize> = Vec::new();
            for &li in &seg.layers {
                let c = &candidates.per_layer[li];
                if c.best().is_some() {
                    current.push(li);
                } else {
                    let error = c
                        .error
                        .as_ref()
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "no valid mapping found".to_string());
                    outcomes[li].1 = LayerOutcome::Failed { error };
                    if !current.is_empty() {
                        runs.push(std::mem::take(&mut current));
                    }
                }
            }
            if !current.is_empty() {
                runs.push(current);
            }

            for run in &runs {
                let (choice, seg_eval, fell_back) =
                    self.evaluate_run(network, &arch, algorithm, run, candidates, &mut cache);

                overhead.add(&seg_eval.breakdown);
                for (pos, &li) in run.iter().enumerate() {
                    let layer = &network.layers()[li];
                    let eval = &seg_eval.layer_evals[pos];
                    let extra = seg_eval.extra_bits[pos];
                    let mapping = candidates.per_layer[li].options[choice[pos]].0.clone();
                    layers[li] = Some(LayerResult {
                        name: layer.name().to_string(),
                        latency_cycles: eval.latency_cycles,
                        energy_pj: eval.energy_pj,
                        extra_bits: extra,
                        data_dram_bits: eval.dram_total_bits - extra,
                        macs: layer.macs(),
                        utilization: eval.utilization,
                        mapping,
                        energy: eval.energy,
                    });

                    let c = &candidates.per_layer[li];
                    let mut reasons: Vec<&str> = Vec::new();
                    if c.tier == SearchTier::Greedy {
                        reasons.push("mapper degraded to greedy construction");
                    }
                    if c.truncated {
                        reasons.push("search truncated by deadline");
                    }
                    if fell_back {
                        reasons.push("segment fell back to tile-as-AuthBlock");
                    }
                    if !reasons.is_empty() {
                        outcomes[li].1 = LayerOutcome::Degraded {
                            reason: reasons.join("; "),
                        };
                    }
                }
            }
        }

        let layers: Vec<LayerResult> = layers.into_iter().flatten().collect();
        let (mut n_sched, mut n_degr, mut n_fail) = (0u64, 0u64, 0u64);
        for (_, o) in &outcomes {
            match o {
                LayerOutcome::Scheduled => n_sched += 1,
                LayerOutcome::Degraded { .. } => n_degr += 1,
                LayerOutcome::Failed { .. } => n_fail += 1,
            }
        }
        LAYERS_SCHEDULED.add(n_sched);
        LAYERS_DEGRADED.add(n_degr);
        LAYERS_FAILED.add(n_fail);
        span.add_field("scheduled", n_sched);
        span.add_field("degraded", n_degr);
        span.add_field("failed", n_fail);
        if layers.is_empty() && network.len() > 0 {
            span.add_field("error", "no usable mapping for any layer");
            return Err(SecureLoopError::Schedule(format!(
                "no layer of '{}' produced a usable mapping under {}",
                network.name(),
                algorithm
            )));
        }
        Ok(NetworkSchedule {
            network: network.name().to_string(),
            algorithm,
            arch_summary: arch.summary(),
            total_latency_cycles: layers.iter().map(|l| l.latency_cycles).sum(),
            total_energy_pj: layers.iter().map(|l| l.energy_pj).sum(),
            layers,
            outcomes,
            overhead,
        })
    }

    /// Evaluate one run of schedulable layers. Returns the chosen
    /// candidate index per layer, the evaluation, and whether the
    /// final fallback rung (tile-as-AuthBlock) had to be taken because
    /// the requested strategy produced a non-finite cost.
    fn evaluate_run(
        &self,
        network: &Network,
        arch: &Architecture,
        algorithm: Algorithm,
        run: &[usize],
        candidates: &CandidateSet,
        cache: &mut OverheadCache,
    ) -> (Vec<usize>, SegmentEvaluation, bool) {
        let best_picks = |run: &[usize]| -> Vec<(Mapping, Evaluation)> {
            run.iter()
                .map(|&li| {
                    candidates.per_layer[li]
                        .best()
                        .expect("run contains only layers with candidates")
                        .clone()
                })
                .collect()
        };
        match algorithm {
            Algorithm::Unsecure => {
                // No authentication: best candidate per layer, no extra
                // bits.
                let picks = best_picks(run);
                let evals: Vec<_> = picks.iter().map(|(_, e)| e.clone()).collect();
                (
                    vec![0; run.len()],
                    SegmentEvaluation {
                        extra_bits: vec![0; run.len()],
                        breakdown: OverheadBreakdown::default(),
                        total_latency: evals.iter().map(|e| e.latency_cycles).sum(),
                        total_energy: evals.iter().map(|e| e.energy_pj).sum(),
                        layer_evals: evals,
                    },
                    false,
                )
            }
            Algorithm::CryptTileSingle => {
                let picks = best_picks(run);
                let e =
                    evaluate_segment(network, arch, run, &picks, StrategyMode::TileRehash, cache);
                (vec![0; run.len()], e, false)
            }
            Algorithm::CryptOptSingle => {
                let picks = best_picks(run);
                let e = evaluate_segment(network, arch, run, &picks, StrategyMode::Optimal, cache);
                if e.total_energy.is_finite() {
                    (vec![0; run.len()], e, false)
                } else {
                    // Final rung of the ladder: retry with the always-
                    // feasible tile-as-AuthBlock strategy.
                    let e = evaluate_segment(
                        network,
                        arch,
                        run,
                        &picks,
                        StrategyMode::TileRehash,
                        cache,
                    );
                    (vec![0; run.len()], e, true)
                }
            }
            Algorithm::CryptOptCross => {
                let out = anneal_segment(network, arch, run, candidates, &self.annealing, cache);
                if out.eval.total_energy.is_finite() {
                    if self.search.mode == SearchMode::Guided {
                        // Close the loop: the mappings annealing settled
                        // on are the ones that survive AuthBlock
                        // coupling — promote them in future candidate
                        // lists for the same search spaces.
                        for (pos, &li) in run.iter().enumerate() {
                            let layer = &network.layers()[li];
                            let key = SearchSpaceKey::of(layer, arch);
                            let winner = &candidates.per_layer[li].options[out.choice[pos]].0;
                            self.feedback.record_win(&key, winner);
                        }
                    }
                    (out.choice, out.eval, false)
                } else {
                    let picks = best_picks(run);
                    let e = evaluate_segment(
                        network,
                        arch,
                        run,
                        &picks,
                        StrategyMode::TileRehash,
                        cache,
                    );
                    (vec![0; run.len()], e, true)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secureloop_crypto::{CryptoConfig, EngineClass};
    use secureloop_mapper::{FaultPlan, FaultScope};
    use secureloop_workload::zoo;

    fn quick_scheduler(secure: bool) -> Scheduler {
        let mut arch = Architecture::eyeriss_base();
        if secure {
            arch = arch.with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
        }
        Scheduler::new(arch)
            .with_search(SearchConfig::quick())
            .with_annealing(AnnealingConfig::quick())
    }

    #[test]
    fn algorithm_ordering_on_alexnet() {
        let net = zoo::alexnet_conv();
        let s = quick_scheduler(true);
        let unsec = s.schedule(&net, Algorithm::Unsecure).expect("schedules");
        let tile = s
            .schedule(&net, Algorithm::CryptTileSingle)
            .expect("schedules");
        let opt = s
            .schedule(&net, Algorithm::CryptOptSingle)
            .expect("schedules");
        let cross = s
            .schedule(&net, Algorithm::CryptOptCross)
            .expect("schedules");

        // Secure designs are never faster than the unsecure baseline.
        assert!(tile.total_latency_cycles >= unsec.total_latency_cycles);
        // Each scheduler step improves (or maintains) the previous one
        // (paper Fig. 11a ordering).
        assert!(
            opt.total_latency_cycles <= tile.total_latency_cycles,
            "opt {} vs tile {}",
            opt.total_latency_cycles,
            tile.total_latency_cycles
        );
        assert!(cross.total_latency_cycles <= opt.total_latency_cycles);
        // Traffic ordering too (Fig. 11b).
        assert!(opt.overhead.total_bits() <= tile.overhead.total_bits());
        // Unsecure has no overhead.
        assert_eq!(unsec.overhead.total_bits(), 0);
        assert!(unsec.layers.iter().all(|l| l.extra_bits == 0));
    }

    #[test]
    fn schedule_reports_every_layer() {
        let net = zoo::alexnet_conv();
        let s = quick_scheduler(true);
        let r = s
            .schedule(&net, Algorithm::CryptOptSingle)
            .expect("schedules");
        assert_eq!(r.layers.len(), 5);
        assert_eq!(r.outcomes.len(), 5);
        assert!(r.is_complete());
        assert_eq!(r.failed_count(), 0);
        assert_eq!(r.scheduled_count() + r.degraded_count(), 5);
        assert_eq!(
            r.total_latency_cycles,
            r.layers.iter().map(|l| l.latency_cycles).sum::<u64>()
        );
        assert_eq!(r.total_macs(), net.total_macs());
        assert!(r.edp() > 0.0);
        assert!(r.total_dram_bits() > 0);
    }

    #[test]
    fn schedule_all_matches_individual_runs() {
        let net = zoo::alexnet_conv();
        let s = quick_scheduler(true);
        let [u, t, o, c] = s.schedule_all(&net).expect("schedules");
        assert_eq!(u.algorithm, Algorithm::Unsecure);
        assert_eq!(
            t.total_latency_cycles,
            s.schedule(&net, Algorithm::CryptTileSingle)
                .expect("schedules")
                .total_latency_cycles
        );
        assert!(c.total_latency_cycles <= o.total_latency_cycles);
    }

    #[test]
    fn unsecure_baseline_strips_crypto() {
        let net = zoo::alexnet_conv();
        let s = quick_scheduler(true);
        let r = s.schedule(&net, Algorithm::Unsecure).expect("schedules");
        assert!(r.arch_summary.contains("unsecure"));
    }

    #[test]
    fn algorithm_display_names() {
        assert_eq!(Algorithm::CryptTileSingle.to_string(), "Crypt-Tile-Single");
        assert_eq!(Algorithm::SECURE.len(), 3);
        for alg in [
            Algorithm::Unsecure,
            Algorithm::CryptTileSingle,
            Algorithm::CryptOptSingle,
            Algorithm::CryptOptCross,
        ] {
            assert_eq!(Algorithm::from_name(alg.name()), Some(alg));
        }
        assert_eq!(Algorithm::from_name("nonsense"), None);
    }

    #[test]
    fn injected_failure_is_isolated_not_fatal() {
        let net = zoo::alexnet_conv();
        let s = quick_scheduler(true);
        let _scope = FaultScope::inject(FaultPlan::fail(["conv2", "conv4"]));
        for alg in [
            Algorithm::CryptTileSingle,
            Algorithm::CryptOptSingle,
            Algorithm::CryptOptCross,
        ] {
            let r = s
                .schedule(&net, alg)
                .expect("partial schedule still succeeds");
            assert_eq!(r.failed_count(), 2, "{alg}");
            assert_eq!(r.layers.len(), 3, "{alg}");
            assert!(!r.is_complete());
            let failed: Vec<_> = r
                .outcomes
                .iter()
                .filter(|(_, o)| !o.is_scheduled())
                .map(|(n, _)| n.as_str())
                .collect();
            assert_eq!(failed, vec!["conv2", "conv4"], "{alg}");
            assert!(r.total_latency_cycles > 0);
        }
    }

    #[test]
    fn all_layers_failing_is_an_error() {
        let net = zoo::alexnet_conv();
        let s = quick_scheduler(true);
        let _scope = FaultScope::inject(FaultPlan::fail([
            "conv1", "conv2", "conv3", "conv4", "conv5",
        ]));
        let err = s.schedule(&net, Algorithm::CryptOptSingle).unwrap_err();
        assert!(matches!(err, SecureLoopError::Schedule(_)));
        assert!(err.to_string().contains("AlexNet"));
    }

    #[test]
    fn guided_cross_runs_record_feedback_and_rerank() {
        let net = zoo::alexnet_conv();
        let arch =
            Architecture::eyeriss_base().with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
        let s = Scheduler::new(arch)
            .with_search(SearchConfig::quick().with_mode(secureloop_mapper::SearchMode::Guided))
            .with_annealing(AnnealingConfig::quick());
        assert!(s.feedback().is_empty());
        let r = s
            .schedule(&net, Algorithm::CryptOptCross)
            .expect("schedules");
        assert!(r.is_complete());
        assert!(
            !s.feedback().is_empty(),
            "cross-layer annealing must record its winners"
        );
        // On the next pass the recorded winner heads each layer's
        // candidate list: no retained option has strictly more wins
        // than the one that sorts first.
        let set = s.candidates(&net, Algorithm::CryptOptCross);
        let arch = s.arch().clone();
        for (li, layer) in net.layers().iter().enumerate() {
            let key = SearchSpaceKey::of(layer, &arch);
            let opts = &set.per_layer[li].options;
            assert!(!opts.is_empty(), "layer {li}");
            let first = s.feedback().wins(&key, &opts[0].0);
            let max = opts
                .iter()
                .map(|(m, _)| s.feedback().wins(&key, m))
                .max()
                .unwrap();
            assert_eq!(first, max, "layer {li}: winner must sort first");
        }
    }

    #[test]
    fn random_mode_records_no_feedback() {
        let net = zoo::alexnet_conv();
        let s = quick_scheduler(true); // SearchConfig::quick() is Random
        s.schedule(&net, Algorithm::CryptOptCross)
            .expect("schedules");
        assert!(
            s.feedback().is_empty(),
            "random mode must leave the feedback loop closed"
        );
    }

    #[test]
    fn shared_feedback_transfers_between_schedulers() {
        let net = zoo::alexnet_conv();
        let arch =
            Architecture::eyeriss_base().with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
        let store = Arc::new(FeedbackStore::new());
        let guided = SearchConfig::quick().with_mode(secureloop_mapper::SearchMode::Guided);
        let a = Scheduler::new(arch.clone())
            .with_search(guided.clone())
            .with_annealing(AnnealingConfig::quick())
            .with_feedback(Arc::clone(&store));
        a.schedule(&net, Algorithm::CryptOptCross)
            .expect("schedules");
        assert!(!store.is_empty());
        let b = Scheduler::new(arch)
            .with_search(guided)
            .with_annealing(AnnealingConfig::quick())
            .with_feedback(Arc::clone(&store));
        assert!(
            !b.feedback().is_empty(),
            "second scheduler sees the first one's wins"
        );
    }

    #[test]
    fn layer_outcome_labels() {
        assert_eq!(LayerOutcome::Scheduled.label(), "scheduled");
        assert_eq!(
            LayerOutcome::Degraded { reason: "x".into() }.label(),
            "degraded"
        );
        assert_eq!(LayerOutcome::Failed { error: "x".into() }.label(), "failed");
        assert!(LayerOutcome::Scheduled.is_scheduled());
        assert!(!LayerOutcome::Failed { error: "x".into() }.is_scheduled());
    }
}
