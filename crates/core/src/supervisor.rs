//! Supervised task execution for the DSE sweep.
//!
//! [`run_supervised`] wraps one unit of work (a design-point
//! evaluation) in the failure-containment machinery the sweep engine
//! relies on:
//!
//! * **panic isolation** — the task runs under
//!   `std::panic::catch_unwind`, so a bug in one design point cannot
//!   take down the worker pool;
//! * **watchdog timeout** — with
//!   [`SupervisorConfig::task_timeout`] set, the attempt runs on a
//!   dedicated thread and is abandoned (its
//!   [`secureloop_mapper::cancel::CancelToken`] tripped, so it exits at
//!   the next chunk boundary) when the wall clock expires;
//! * **retry with exponential backoff** — panics, timeouts and typed
//!   errors are retried up to [`SupervisorConfig::max_retries`] times,
//!   sleeping `base_backoff * 2^attempt` between attempts; retries
//!   after a panic or timeout bypass the shared candidate cache so a
//!   crashing computation cannot be answered from (or write into)
//!   shared state;
//! * **poison classification** — a task that exhausts its retries
//!   panicking or stalling is reported
//!   [`SupervisedOutcome::Poisoned`] with the captured panic payload
//!   or timeout cause, distinct from an ordinary typed-error
//!   [`SupervisedOutcome::Failed`];
//! * **cancellation** — a process-wide shutdown request (see
//!   [`crate::shutdown`]) short-circuits to
//!   [`SupervisedOutcome::Cancelled`] without burning retries.
//!
//! Everything is observable through `secureloop-telemetry`: a
//! `supervisor` span per task plus the `supervisor.retries`,
//! `supervisor.panics`, `supervisor.timeouts`, `supervisor.poisoned`
//! and `supervisor.cancelled` counters.

use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use secureloop_mapper::cancel::{self, CancelToken, TaskContext, TaskScope};
use secureloop_mapper::MapperError;
use secureloop_telemetry::{self as telemetry, Counter, Timer};

use crate::error::SecureLoopError;

static RETRIES: Counter = Counter::new("supervisor.retries");
static PANICS: Counter = Counter::new("supervisor.panics");
static TIMEOUTS: Counter = Counter::new("supervisor.timeouts");
static POISONED: Counter = Counter::new("supervisor.poisoned");
static CANCELLED: Counter = Counter::new("supervisor.cancelled");
static TASK_TIMER: Timer = Timer::new("supervisor.task");

/// Retry/timeout policy for supervised tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Additional attempts after the first one fails (0 = no retries).
    pub max_retries: u32,
    /// Sleep before retry `n` is `base_backoff * 2^n`.
    pub base_backoff: Duration,
    /// Wall-clock budget per attempt. `None` disables the watchdog:
    /// attempts run inline on the calling worker thread.
    pub task_timeout: Option<Duration>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 2,
            base_backoff: Duration::from_millis(25),
            task_timeout: None,
        }
    }
}

impl SupervisorConfig {
    /// Replace the retry budget.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Replace the backoff base.
    pub fn with_base_backoff(mut self, backoff: Duration) -> Self {
        self.base_backoff = backoff;
        self
    }

    /// Set a per-attempt wall-clock budget.
    pub fn with_task_timeout(mut self, timeout: Duration) -> Self {
        self.task_timeout = Some(timeout);
        self
    }

    /// Backoff before the retry following failed attempt `attempt`
    /// (0-based), capped at 1024x the base.
    pub fn backoff_after(&self, attempt: u32) -> Duration {
        self.base_backoff.saturating_mul(1 << attempt.min(10))
    }
}

/// How one supervised task resolved.
#[derive(Debug)]
pub enum SupervisedOutcome<T> {
    /// The task succeeded (possibly after retries).
    Completed {
        /// The task's result.
        value: T,
        /// Attempts spent, including the successful one.
        attempts: u32,
    },
    /// Every attempt returned a typed error; the last one is reported.
    Failed {
        /// The final attempt's error.
        error: SecureLoopError,
        /// Attempts spent.
        attempts: u32,
    },
    /// The final attempt panicked or stalled past its timeout: the task
    /// is poison and must be quarantined, not re-run on resume.
    Poisoned {
        /// Captured panic payload or timeout cause.
        cause: String,
        /// Attempts spent.
        attempts: u32,
    },
    /// A process-wide shutdown request stopped the task; it is neither
    /// failed nor poisoned and will be re-run on resume.
    Cancelled,
}

/// Why one attempt failed.
enum AttemptError {
    Panic(String),
    Timeout(Duration),
    Engine(SecureLoopError),
}

fn panic_payload(e: Box<dyn std::any::Any + Send>) -> String {
    e.downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| e.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

fn is_cancelled_error(e: &SecureLoopError) -> bool {
    matches!(e, SecureLoopError::Mapper(MapperError::Cancelled { .. }))
}

fn run_attempt<T, F>(
    timeout: Option<Duration>,
    bypass_cache: bool,
    job_token: Option<&CancelToken>,
    task: F,
) -> Result<T, AttemptError>
where
    T: Send + 'static,
    F: FnOnce() -> Result<T, SecureLoopError> + Send + 'static,
{
    let token = CancelToken::new();
    let ctx = TaskContext {
        token: Some(token.clone()),
        job_token: job_token.cloned(),
        bypass_cache,
    };
    match timeout {
        None => {
            let _scope = TaskScope::enter(ctx);
            match panic::catch_unwind(AssertUnwindSafe(task)) {
                Ok(Ok(v)) => Ok(v),
                Ok(Err(e)) => Err(AttemptError::Engine(e)),
                Err(p) => Err(AttemptError::Panic(panic_payload(p))),
            }
        }
        Some(budget) => {
            // The attempt runs on a dedicated thread so the watchdog
            // can abandon it: on timeout the token is tripped (the
            // mapper exits at its next chunk boundary) and the thread
            // is left to unwind on its own — never joined, because a
            // stalled task is exactly what we must not wait for.
            // The caller's telemetry job scope is re-entered on the
            // attempt thread so the task's events stay attributed.
            let scope = telemetry::current_scope();
            let (tx, rx) = mpsc::channel();
            let handle = thread::spawn(move || {
                let _job = scope.map(telemetry::enter_scope);
                let _scope = TaskScope::enter(ctx);
                let result = panic::catch_unwind(AssertUnwindSafe(task));
                let _ = tx.send(result);
            });
            match rx.recv_timeout(budget) {
                Ok(outcome) => {
                    let _ = handle.join();
                    match outcome {
                        Ok(Ok(v)) => Ok(v),
                        Ok(Err(e)) => Err(AttemptError::Engine(e)),
                        Err(p) => Err(AttemptError::Panic(panic_payload(p))),
                    }
                }
                Err(_) => {
                    token.cancel();
                    drop(handle);
                    Err(AttemptError::Timeout(budget))
                }
            }
        }
    }
}

/// Run `task` under the supervisor's panic/timeout/retry policy.
///
/// `task` must be `Clone` because each retry needs a fresh callable,
/// and `'static + Send` because a watchdogged attempt runs on its own
/// thread. Design-point tasks clone their (cheap, `Arc`-heavy) inputs
/// up front.
pub fn run_supervised<T, F>(label: &str, cfg: &SupervisorConfig, task: F) -> SupervisedOutcome<T>
where
    T: Send + 'static,
    F: FnOnce() -> Result<T, SecureLoopError> + Clone + Send + 'static,
{
    run_supervised_cancellable(label, cfg, None, task)
}

/// [`run_supervised`] with an additional job-level [`CancelToken`]:
/// when the token trips — a service client cancelled its job — the task
/// resolves [`SupervisedOutcome::Cancelled`] at the next chunk boundary
/// without burning retries, exactly like a process-wide shutdown, but
/// scoped to this one job.
pub fn run_supervised_cancellable<T, F>(
    label: &str,
    cfg: &SupervisorConfig,
    job_token: Option<&CancelToken>,
    task: F,
) -> SupervisedOutcome<T>
where
    T: Send + 'static,
    F: FnOnce() -> Result<T, SecureLoopError> + Clone + Send + 'static,
{
    let mut span = telemetry::span("supervisor", label.to_string()).with_timer(&TASK_TIMER);
    let job_cancelled = || job_token.is_some_and(CancelToken::is_cancelled);
    let total_attempts = cfg.max_retries.saturating_add(1);
    let mut last: Option<AttemptError> = None;
    let mut attempts = 0u32;
    for attempt in 0..total_attempts {
        if cancel::shutdown_requested() || job_cancelled() {
            CANCELLED.incr();
            span.add_field("outcome", "cancelled");
            return SupervisedOutcome::Cancelled;
        }
        if attempt > 0 {
            RETRIES.incr();
            thread::sleep(cfg.backoff_after(attempt - 1));
        }
        // After a panic or timeout the shared candidate cache is
        // suspect for this task: bypass it on the retry.
        let bypass_cache = matches!(
            last,
            Some(AttemptError::Panic(_)) | Some(AttemptError::Timeout(_))
        );
        attempts = attempt + 1;
        match run_attempt(cfg.task_timeout, bypass_cache, job_token, task.clone()) {
            Ok(value) => {
                span.add_field("outcome", "completed");
                span.add_field("attempts", u64::from(attempts));
                return SupervisedOutcome::Completed { value, attempts };
            }
            Err(AttemptError::Engine(e))
                if is_cancelled_error(&e) || cancel::shutdown_requested() || job_cancelled() =>
            {
                CANCELLED.incr();
                span.add_field("outcome", "cancelled");
                return SupervisedOutcome::Cancelled;
            }
            Err(e) => {
                match &e {
                    AttemptError::Panic(_) => PANICS.incr(),
                    AttemptError::Timeout(_) => TIMEOUTS.incr(),
                    AttemptError::Engine(_) => {}
                }
                last = Some(e);
            }
        }
    }
    span.add_field("attempts", u64::from(attempts));
    match last.expect("at least one attempt ran") {
        AttemptError::Engine(error) => {
            span.add_field("outcome", "failed");
            SupervisedOutcome::Failed { error, attempts }
        }
        AttemptError::Panic(payload) => {
            POISONED.incr();
            span.add_field("outcome", "poisoned");
            SupervisedOutcome::Poisoned {
                cause: format!("panicked: {payload}"),
                attempts,
            }
        }
        AttemptError::Timeout(budget) => {
            POISONED.incr();
            span.add_field("outcome", "poisoned");
            SupervisedOutcome::Poisoned {
                cause: format!("timed out after {:.3}s", budget.as_secs_f64()),
                attempts,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn quick() -> SupervisorConfig {
        SupervisorConfig::default().with_base_backoff(Duration::from_millis(1))
    }

    #[test]
    fn success_passes_through() {
        let out = run_supervised("t", &quick(), || Ok::<_, SecureLoopError>(42));
        match out {
            SupervisedOutcome::Completed { value, attempts } => {
                assert_eq!(value, 42);
                assert_eq!(attempts, 1);
            }
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn typed_errors_retry_then_fail() {
        let calls = Arc::new(AtomicU32::new(0));
        let c = calls.clone();
        let out = run_supervised("t", &quick().with_max_retries(2), move || {
            c.fetch_add(1, Ordering::SeqCst);
            Err::<(), _>(SecureLoopError::Schedule("boom".into()))
        });
        match out {
            SupervisedOutcome::Failed { error, attempts } => {
                assert!(error.to_string().contains("boom"));
                assert_eq!(attempts, 3);
            }
            other => panic!("expected failure, got {other:?}"),
        }
        assert_eq!(calls.load(Ordering::SeqCst), 3, "1 attempt + 2 retries");
    }

    #[test]
    fn transient_errors_recover_within_the_retry_budget() {
        let calls = Arc::new(AtomicU32::new(0));
        let c = calls.clone();
        let out = run_supervised("t", &quick().with_max_retries(2), move || {
            if c.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(SecureLoopError::Schedule("transient".into()))
            } else {
                Ok(7)
            }
        });
        match out {
            SupervisedOutcome::Completed { value, attempts } => {
                assert_eq!(value, 7);
                assert_eq!(attempts, 3);
            }
            other => panic!("expected recovery, got {other:?}"),
        }
    }

    #[test]
    fn panics_are_contained_and_poison_after_retries() {
        let out = run_supervised(
            "t",
            &quick().with_max_retries(1),
            || -> Result<(), SecureLoopError> {
                panic!("injected chaos");
            },
        );
        match out {
            SupervisedOutcome::Poisoned { cause, attempts } => {
                assert!(cause.contains("injected chaos"), "{cause}");
                assert_eq!(attempts, 2);
            }
            other => panic!("expected poison, got {other:?}"),
        }
    }

    #[test]
    fn stalls_past_the_watchdog_poison_with_a_timeout_cause() {
        let cfg = quick()
            .with_max_retries(0)
            .with_task_timeout(Duration::from_millis(20));
        let out = run_supervised("t", &cfg, || -> Result<(), SecureLoopError> {
            // Cooperative stall: wake up early if cancelled.
            let ctx = cancel::current_context();
            for _ in 0..200 {
                if cancel::cancelled(&ctx) {
                    break;
                }
                thread::sleep(Duration::from_millis(5));
            }
            Ok(())
        });
        match out {
            SupervisedOutcome::Poisoned { cause, attempts } => {
                assert!(cause.contains("timed out"), "{cause}");
                assert_eq!(attempts, 1);
            }
            other => panic!("expected timeout poison, got {other:?}"),
        }
    }

    #[test]
    fn fast_tasks_pass_under_a_watchdog() {
        let cfg = quick().with_task_timeout(Duration::from_secs(30));
        let out = run_supervised("t", &cfg, || Ok::<_, SecureLoopError>("ok"));
        assert!(matches!(
            out,
            SupervisedOutcome::Completed { value: "ok", .. }
        ));
    }

    #[test]
    fn job_token_cancellation_short_circuits_without_retries() {
        let token = CancelToken::new();
        token.cancel();
        let calls = Arc::new(AtomicU32::new(0));
        let c = calls.clone();
        let out = run_supervised_cancellable(
            "t",
            &quick().with_max_retries(5),
            Some(&token),
            move || {
                c.fetch_add(1, Ordering::SeqCst);
                Ok::<_, SecureLoopError>(1)
            },
        );
        assert!(matches!(out, SupervisedOutcome::Cancelled));
        assert_eq!(calls.load(Ordering::SeqCst), 0, "no attempt runs");
    }

    #[test]
    fn job_token_reaches_the_task_context() {
        let token = CancelToken::new();
        let out = run_supervised_cancellable(
            "t",
            &quick().with_max_retries(0),
            Some(&token),
            move || {
                let ctx = cancel::current_context();
                Ok::<_, SecureLoopError>(ctx.job_token.is_some())
            },
        );
        match out {
            SupervisedOutcome::Completed { value, .. } => {
                assert!(value, "task sees its job token");
            }
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let cfg = SupervisorConfig::default().with_base_backoff(Duration::from_millis(10));
        assert_eq!(cfg.backoff_after(0), Duration::from_millis(10));
        assert_eq!(cfg.backoff_after(1), Duration::from_millis(20));
        assert_eq!(cfg.backoff_after(3), Duration::from_millis(80));
        assert_eq!(cfg.backoff_after(40), Duration::from_millis(10) * 1024);
    }
}
