//! Double-buffered pipeline replay of a tile trace.
//!
//! Models the execution the paper's §4.1 assumption idealises: at each
//! temporal step the PE array computes on the current tiles while the
//! DMA + cryptographic engines stage the next ones. Step latency is
//! `max(compute, transfer)`; transfer time is the slower of the DRAM
//! interface (total bytes) and the crypto engines (per-stream when one
//! engine group serves each datatype). A pipeline fill of one transfer
//! precedes the first compute.
//!
//! The analytical bound `max(Σ compute, Σ transfer)` equals the replay
//! exactly when demand is smooth; bursty schedules replay slower. The
//! ratio is reported as [`ReplayResult::pipeline_efficiency`].

use secureloop_arch::Architecture;

use crate::trace::Trace;

/// Outcome of replaying a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayResult {
    /// Simulated latency in cycles (fill + Σ per-step max).
    pub total_cycles: u64,
    /// Σ compute across steps.
    pub compute_cycles: u64,
    /// Σ transfer across steps (at the effective bandwidth).
    pub transfer_cycles: u64,
    /// Pipeline fill: the first step's transfer, paid before any
    /// compute starts.
    pub fill_cycles: u64,
}

impl ReplayResult {
    /// The analytical lower bound this replay is compared against.
    pub fn analytical_bound(&self) -> u64 {
        self.compute_cycles.max(self.transfer_cycles)
    }

    /// `analytical / simulated`: 1.0 means the paper's perfect-
    /// pipelining assumption holds exactly for this schedule.
    pub fn pipeline_efficiency(&self) -> f64 {
        self.analytical_bound() as f64 / self.total_cycles as f64
    }
}

/// Cycles to move `bits_by_dt` through DRAM + crypto in one step.
fn transfer_cycles(arch: &Architecture, bits_by_dt: [u64; 3]) -> f64 {
    let total_bytes = bits_by_dt.iter().sum::<u64>() as f64 / 8.0;
    let mut t = total_bytes / arch.dram().bytes_per_cycle();
    if let Some(crypto) = arch.crypto() {
        let c = match crypto.per_stream_bytes_per_cycle() {
            Some(per) => bits_by_dt
                .iter()
                .map(|&b| b as f64 / 8.0 / per)
                .fold(0.0f64, f64::max),
            None => total_bytes / crypto.total_bytes_per_cycle(),
        };
        t = t.max(c);
    }
    t
}

/// Replay `trace` on `arch` with double buffering.
pub fn replay(trace: &Trace, arch: &Architecture) -> ReplayResult {
    // Aggregate per-step transfer demand.
    let word = u64::from(trace.word_bits);
    let mut per_step: Vec<[u64; 3]> = vec![[0; 3]; trace.steps as usize];
    for e in &trace.events {
        let i = secureloop_loopnest::dt_index(e.dt);
        per_step[e.step as usize][i] += e.words * word;
    }

    let mut total = 0.0f64;
    let mut transfer_sum = 0.0f64;
    let fill = transfer_cycles(arch, per_step[0]);
    total += fill;
    for (i, &bits) in per_step.iter().enumerate() {
        // Step i computes while step i+1's data is staged.
        let staged = per_step.get(i + 1).copied().unwrap_or([0; 3]);
        let t = transfer_cycles(arch, staged);
        transfer_sum += transfer_cycles(arch, bits);
        total += (trace.compute_per_step as f64).max(t);
    }

    ReplayResult {
        total_cycles: total.ceil() as u64,
        compute_cycles: trace.compute_per_step * trace.steps,
        transfer_cycles: transfer_sum.ceil() as u64,
        fill_cycles: fill.ceil() as u64,
    }
}

/// Detailed replay: per-step transfer time comes from the banked DRAM
/// model ([`crate::dram`]) *and* the per-stream cryptographic engines,
/// instead of the flat bytes-per-cycle division — the most detailed
/// latency estimate in the stack.
///
/// Returns the same [`ReplayResult`] shape; `transfer_cycles` is the
/// simulated DRAM+crypto service time.
pub fn replay_detailed(
    trace: &Trace,
    arch: &Architecture,
    timing: crate::dram::DramTiming,
) -> ReplayResult {
    let word = u64::from(trace.word_bits);
    let mut per_step: Vec<[u64; 3]> = vec![[0; 3]; trace.steps as usize];
    for e in &trace.events {
        let i = secureloop_loopnest::dt_index(e.dt);
        per_step[e.step as usize][i] += e.words * word;
    }

    // Persistent DRAM state across steps (open rows survive), with the
    // same per-tensor address layout as `replay_dram`.
    let mut dram = crate::dram::DramSim::new(timing);
    let mut cursors = [0u64; 3];
    const TENSOR_STRIDE: u64 = 1 << 32;
    let mut step_transfer = |bits: [u64; 3]| -> f64 {
        let before = dram.result().cycles;
        for (i, &b) in bits.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let bytes = b / 8 + u64::from(!b.is_multiple_of(8));
            dram.access((i as u64 + 1) * TENSOR_STRIDE + cursors[i], bytes);
            cursors[i] = (cursors[i] + bytes) % (16 << 20);
        }
        let dram_cycles = (dram.result().cycles - before) as f64;
        let crypto_cycles = match arch.crypto() {
            None => 0.0,
            Some(c) => match c.per_stream_bytes_per_cycle() {
                Some(per) => bits
                    .iter()
                    .map(|&b| b as f64 / 8.0 / per)
                    .fold(0.0f64, f64::max),
                None => bits.iter().sum::<u64>() as f64 / 8.0 / c.total_bytes_per_cycle(),
            },
        };
        dram_cycles.max(crypto_cycles)
    };

    let step_costs: Vec<f64> = per_step.iter().map(|&b| step_transfer(b)).collect();
    let fill = step_costs.first().copied().unwrap_or(0.0);
    let mut total = fill;
    let mut transfer_sum = 0.0;
    for (i, &cost) in step_costs.iter().enumerate() {
        let staged = step_costs.get(i + 1).copied().unwrap_or(0.0);
        transfer_sum += cost;
        total += (trace.compute_per_step as f64).max(staged);
    }

    ReplayResult {
        total_cycles: total.ceil() as u64,
        compute_cycles: trace.compute_per_step * trace.steps,
        transfer_cycles: transfer_sum.ceil() as u64,
        fill_cycles: fill.ceil() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::generate_trace;
    use secureloop_crypto::{CryptoConfig, EngineClass};
    use secureloop_loopnest::{evaluate, Mapping};
    use secureloop_workload::{ConvLayer, Dim, DimMap};

    fn fixture() -> (ConvLayer, Mapping) {
        let layer = ConvLayer::builder("t")
            .input_hw(18, 18)
            .channels(8, 16)
            .kernel(3, 3)
            .build()
            .unwrap();
        let mut m = Mapping::untiled(&layer);
        m.rf = DimMap::splat(1);
        m.rf[Dim::S] = 3;
        m.rf[Dim::C] = 2;
        m.spatial_y[Dim::R] = 3;
        m.spatial_x[Dim::Q] = 8;
        m.glb[Dim::P] = 4;
        m.dram[Dim::M] = 16;
        m.dram[Dim::C] = 4;
        m.dram[Dim::P] = 4;
        m.dram[Dim::Q] = 2;
        m.dram_order = [Dim::N, Dim::M, Dim::P, Dim::Q, Dim::C, Dim::R, Dim::S];
        (layer, m)
    }

    #[test]
    fn replay_brackets_the_analytical_bound() {
        let (layer, m) = fixture();
        for arch in [
            secureloop_arch::Architecture::eyeriss_base(),
            secureloop_arch::Architecture::eyeriss_base()
                .with_crypto(CryptoConfig::new(EngineClass::Parallel, 3)),
            secureloop_arch::Architecture::eyeriss_base()
                .with_crypto(CryptoConfig::new(EngineClass::Serial, 1)),
        ] {
            let trace = generate_trace(&layer, &arch, &m).unwrap();
            let res = replay(&trace, &arch);
            // Simulated latency can never beat the analytical bound...
            assert!(
                res.total_cycles >= res.analytical_bound(),
                "{}: {} < bound {}",
                arch.summary(),
                res.total_cycles,
                res.analytical_bound()
            );
            // ...and for this regular schedule it stays close to it.
            assert!(
                res.pipeline_efficiency() > 0.45,
                "{}: efficiency {}",
                arch.summary(),
                res.pipeline_efficiency()
            );
        }
    }

    #[test]
    fn replay_transfer_matches_loopnest_dram_cycles() {
        let (layer, m) = fixture();
        let arch = secureloop_arch::Architecture::eyeriss_base()
            .with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
        let eval = evaluate(&layer, &arch, &m).unwrap();
        let trace = generate_trace(&layer, &arch, &m).unwrap();
        let res = replay(&trace, &arch);
        // Σ per-step transfer vs the single closed-form division: equal
        // up to per-step ceiling effects.
        let diff = res.transfer_cycles.abs_diff(eval.dram_cycles);
        assert!(
            diff <= trace.steps + 8,
            "transfer {} vs analytical {}",
            res.transfer_cycles,
            eval.dram_cycles
        );
        assert_eq!(res.compute_cycles, eval.compute_cycles);
    }

    #[test]
    fn detailed_replay_close_to_flat_replay() {
        // With generous DRAM timing and the crypto engine as the real
        // bottleneck, the detailed and flat replays agree closely.
        let (layer, m) = fixture();
        let arch = secureloop_arch::Architecture::eyeriss_base()
            .with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
        let trace = generate_trace(&layer, &arch, &m).unwrap();
        let flat = replay(&trace, &arch);
        let detailed = replay_detailed(&trace, &arch, crate::dram::DramTiming::lpddr4());
        let ratio = detailed.total_cycles as f64 / flat.total_cycles as f64;
        assert!(
            (0.9..1.3).contains(&ratio),
            "detailed {} vs flat {} (ratio {ratio:.2})",
            detailed.total_cycles,
            flat.total_cycles
        );
        assert!(detailed.total_cycles >= detailed.compute_cycles);
    }

    #[test]
    fn detailed_replay_unsecure_bound_by_dram_model() {
        let (layer, m) = fixture();
        let arch = secureloop_arch::Architecture::eyeriss_base();
        let trace = generate_trace(&layer, &arch, &m).unwrap();
        let detailed = replay_detailed(&trace, &arch, crate::dram::DramTiming::lpddr4());
        // The banked model can only be slower than the flat division.
        let flat = replay(&trace, &arch);
        assert!(detailed.transfer_cycles >= flat.transfer_cycles);
    }

    #[test]
    fn crypto_throttling_appears_in_replay() {
        let (layer, m) = fixture();
        let base = secureloop_arch::Architecture::eyeriss_base();
        let secure = base
            .clone()
            .with_crypto(CryptoConfig::new(EngineClass::Serial, 3));
        let t_base = generate_trace(&layer, &base, &m).unwrap();
        let t_sec = generate_trace(&layer, &secure, &m).unwrap();
        let r_base = replay(&t_base, &base);
        let r_sec = replay(&t_sec, &secure);
        assert!(r_sec.total_cycles > 3 * r_base.total_cycles);
    }
}
