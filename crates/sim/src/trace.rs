//! Program-order DRAM tile-event trace generation.

use std::collections::HashSet;
use std::fmt;

use secureloop_arch::Architecture;
use secureloop_loopnest::{footprint_words, inner_products, Boundary, Mapping, MappingError};
use secureloop_workload::{ConvLayer, Datatype, Dim};

/// Upper bound on walked loop iterations (DRAM × GLB levels); traces
/// larger than this are refused rather than silently sampled.
pub const MAX_STEPS: u64 = 1 << 22;

/// Why a trace could not be generated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The mapping is invalid for the layer/architecture.
    InvalidMapping(MappingError),
    /// The temporal nest has more iterations than [`MAX_STEPS`].
    TooLarge {
        /// Iterations the walk would need.
        steps: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidMapping(e) => write!(f, "invalid mapping: {e}"),
            TraceError::TooLarge { steps } => {
                write!(f, "trace would need {steps} steps (cap {MAX_STEPS})")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<MappingError> for TraceError {
    fn from(e: MappingError) -> Self {
        TraceError::InvalidMapping(e)
    }
}

/// One DRAM-boundary transfer: a whole tile of one datatype.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileEvent {
    /// Temporal step (combined DRAM×GLB loop iteration) the transfer
    /// belongs to.
    pub step: u64,
    /// Datatype moved.
    pub dt: Datatype,
    /// Transfer size in data words.
    pub words: u64,
    /// `true` for write-backs (partial sums / final ofmap).
    pub is_write: bool,
}

/// The full trace of one layer execution.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Sparse event list, ordered by `step`.
    pub events: Vec<TileEvent>,
    /// Total temporal steps walked (DRAM × GLB loop iterations).
    pub steps: u64,
    /// Compute cycles spent inside each step (the RF-level nest).
    pub compute_per_step: u64,
    /// Word size in bits.
    pub word_bits: u32,
}

impl Trace {
    /// Total words moved per datatype: `[reads; 3]`, `[writes; 3]`.
    pub fn totals(&self) -> ([u64; 3], [u64; 3]) {
        let mut reads = [0u64; 3];
        let mut writes = [0u64; 3];
        for e in &self.events {
            let i = secureloop_loopnest::dt_index(e.dt);
            if e.is_write {
                writes[i] += e.words;
            } else {
                reads[i] += e.words;
            }
        }
        (reads, writes)
    }

    /// Total DRAM traffic in bits.
    pub fn total_bits(&self) -> u64 {
        let (r, w) = self.totals();
        (r.iter().sum::<u64>() + w.iter().sum::<u64>()) * u64::from(self.word_bits)
    }
}

/// Walk the DRAM and GLB loop levels of `mapping` in program order and
/// emit every DRAM tile transfer.
///
/// The walk reproduces the analytical reuse rule operationally: a
/// datatype's tile is (re)fetched whenever its tile identity differs
/// from the previous step's — which is exactly "refetch under any loop
/// at or outside the innermost relevant loop". The integration tests
/// assert the totals equal [`evaluate`](secureloop_loopnest::evaluate)'s
/// access counts.
///
/// # Errors
///
/// [`TraceError::InvalidMapping`] if the mapping fails validation;
/// [`TraceError::TooLarge`] if the combined nest exceeds [`MAX_STEPS`].
pub fn generate_trace(
    layer: &ConvLayer,
    arch: &Architecture,
    mapping: &Mapping,
) -> Result<Trace, TraceError> {
    mapping.validate(layer, arch)?;

    // The walked loops: DRAM level then GLB level, outermost first.
    let mut loops: Vec<(Dim, u64, bool)> = Vec::new(); // (dim, bound, is_dram_level)
    for &d in &mapping.dram_order {
        if mapping.dram[d] > 1 {
            loops.push((d, mapping.dram[d], true));
        }
    }
    for &d in &mapping.glb_order {
        if mapping.glb[d] > 1 {
            loops.push((d, mapping.glb[d], false));
        }
    }
    let steps: u64 = loops.iter().map(|&(_, b, _)| b).product();
    if steps > MAX_STEPS {
        return Err(TraceError::TooLarge { steps });
    }

    let constraints = arch.dataflow().constraints();
    let glb_tile = inner_products(mapping, Boundary::BelowDram);
    let pe_tile = inner_products(mapping, Boundary::BelowGlb);

    // Per-datatype fetch volume and the loop subset that forms the tile
    // identity.
    struct Stream {
        dt: Datatype,
        words: u64,
        /// Indices into `loops` whose value identifies the tile.
        id_loops: Vec<usize>,
        prev_id: Option<Vec<u64>>,
    }
    let mut streams: Vec<Stream> = Vec::new();
    for dt in [Datatype::Weight, Datatype::Ifmap] {
        let bypass = constraints.bypasses_glb(dt);
        let words = if bypass {
            footprint_words(layer, dt, &pe_tile)
        } else {
            footprint_words(layer, dt, &glb_tile)
        };
        let id_loops = loops
            .iter()
            .enumerate()
            .filter(|&(_, &(d, _, is_dram))| layer.is_relevant(dt, d) && (bypass || is_dram))
            .map(|(i, _)| i)
            .collect();
        streams.push(Stream {
            dt,
            words,
            id_loops,
            prev_id: None,
        });
    }

    // Ofmap: epoch tracking at the DRAM boundary.
    let ofmap_words = footprint_words(layer, Datatype::Ofmap, &glb_tile);
    let ofmap_id_loops: Vec<usize> = loops
        .iter()
        .enumerate()
        .filter(|&(_, &(d, _, is_dram))| is_dram && layer.is_relevant(Datatype::Ofmap, d))
        .map(|(i, _)| i)
        .collect();
    let mut ofmap_prev: Option<Vec<u64>> = None;
    let mut ofmap_seen: HashSet<Vec<u64>> = HashSet::new();

    let mut idx = vec![0u64; loops.len()];
    let mut events = Vec::new();
    let id_of =
        |idx: &[u64], which: &[usize]| -> Vec<u64> { which.iter().map(|&i| idx[i]).collect() };

    for step in 0..steps {
        for s in &mut streams {
            let id = id_of(&idx, &s.id_loops);
            if s.prev_id.as_ref() != Some(&id) {
                events.push(TileEvent {
                    step,
                    dt: s.dt,
                    words: s.words,
                    is_write: false,
                });
                s.prev_id = Some(id);
            }
        }
        {
            let id = id_of(&idx, &ofmap_id_loops);
            if ofmap_prev.as_ref() != Some(&id) {
                // Epoch boundary: write back the outgoing tile, read the
                // incoming one if it holds previously spilled partials.
                if let Some(prev) = ofmap_prev.take() {
                    events.push(TileEvent {
                        step,
                        dt: Datatype::Ofmap,
                        words: ofmap_words,
                        is_write: true,
                    });
                    ofmap_seen.insert(prev);
                }
                if ofmap_seen.contains(&id) {
                    events.push(TileEvent {
                        step,
                        dt: Datatype::Ofmap,
                        words: ofmap_words,
                        is_write: false,
                    });
                }
                ofmap_prev = Some(id);
            }
        }
        // Odometer increment (outermost first layout; advance from the
        // innermost position).
        for i in (0..loops.len()).rev() {
            idx[i] += 1;
            if idx[i] < loops[i].1 {
                break;
            }
            idx[i] = 0;
        }
        let _ = step;
    }
    // Final write-back of the resident tile.
    if ofmap_prev.is_some() || steps == 0 {
        events.push(TileEvent {
            step: steps.saturating_sub(1),
            dt: Datatype::Ofmap,
            words: ofmap_words,
            is_write: true,
        });
    }

    let glb_temporal: u64 = Dim::ALL.iter().map(|&d| mapping.glb[d]).product();
    let dram_temporal: u64 = Dim::ALL.iter().map(|&d| mapping.dram[d]).product();
    let compute_per_step = mapping.temporal_iterations() / (glb_temporal * dram_temporal);

    Ok(Trace {
        events,
        steps: steps.max(1),
        compute_per_step,
        word_bits: layer.word_bits(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use secureloop_loopnest::evaluate;
    use secureloop_workload::DimMap;

    fn fixture() -> (ConvLayer, Architecture, Mapping) {
        let layer = ConvLayer::builder("t")
            .input_hw(18, 18)
            .channels(8, 16)
            .kernel(3, 3)
            .build()
            .unwrap();
        let arch = Architecture::eyeriss_base();
        let mut m = Mapping::untiled(&layer);
        m.rf = DimMap::splat(1);
        m.rf[Dim::S] = 3;
        m.rf[Dim::C] = 2;
        m.spatial_y[Dim::R] = 3;
        m.spatial_x[Dim::Q] = 8;
        m.glb[Dim::P] = 4;
        m.dram[Dim::M] = 16;
        m.dram[Dim::C] = 4;
        m.dram[Dim::P] = 4;
        m.dram[Dim::Q] = 2;
        // Reduction innermost: the ofmap accumulates without spills.
        m.dram_order = [Dim::N, Dim::M, Dim::P, Dim::Q, Dim::C, Dim::R, Dim::S];
        m.validate(&layer, &arch).unwrap();
        (layer, arch, m)
    }

    #[test]
    fn trace_totals_match_analytical_counts() {
        let (layer, arch, m) = fixture();
        let eval = evaluate(&layer, &arch, &m).unwrap();
        let trace = generate_trace(&layer, &arch, &m).unwrap();
        let (reads, writes) = trace.totals();
        assert_eq!(reads, eval.counts.dram_read_words, "reads diverge");
        assert_eq!(writes, eval.counts.dram_write_words, "writes diverge");
        assert_eq!(trace.total_bits(), eval.dram_total_bits);
    }

    #[test]
    fn order_sensitivity_shows_in_the_trace() {
        let (layer, arch, m) = fixture();
        // Reduction loop outermost: partial sums bounce to DRAM.
        let mut bad = m.clone();
        bad.dram_order = [Dim::C, Dim::N, Dim::M, Dim::P, Dim::Q, Dim::R, Dim::S];
        let good_trace = generate_trace(&layer, &arch, &m).unwrap();
        let bad_trace = generate_trace(&layer, &arch, &bad).unwrap();
        let ofmap_reads = |t: &Trace| t.totals().0[2];
        assert!(ofmap_reads(&bad_trace) > ofmap_reads(&good_trace));
        // And both still agree with their own analytical counts.
        for (mm, tt) in [(&m, &good_trace), (&bad, &bad_trace)] {
            let e = evaluate(&layer, &arch, mm).unwrap();
            assert_eq!(tt.totals().0, e.counts.dram_read_words);
        }
    }

    #[test]
    fn untiled_mapping_traces_single_fetches() {
        let layer = ConvLayer::builder("tiny")
            .input_hw(6, 6)
            .channels(2, 2)
            .kernel(3, 3)
            .build()
            .unwrap();
        let arch = Architecture::eyeriss_base();
        let m = Mapping::untiled(&layer);
        // Untiled fails RF capacity on the base arch? 6x6x2 ifmap etc.
        // is small enough; validate first.
        if m.validate(&layer, &arch).is_ok() {
            let t = generate_trace(&layer, &arch, &m).unwrap();
            let (reads, writes) = t.totals();
            assert_eq!(reads[1], layer.tensor_elems(Datatype::Ifmap));
            assert_eq!(writes[2], layer.tensor_elems(Datatype::Ofmap));
            assert_eq!(t.steps, 1);
        }
    }

    #[test]
    fn oversized_nest_is_refused() {
        let layer = ConvLayer::builder("big")
            .input_hw(256, 256)
            .channels(512, 512)
            .kernel(3, 3)
            .pad(1)
            .build()
            .unwrap();
        let arch = Architecture::eyeriss_base();
        let mut m = Mapping::untiled(&layer);
        // Push everything to the DRAM level: astronomically many steps.
        m.dram = layer.bounds();
        m.rf = DimMap::splat(1);
        let err = generate_trace(&layer, &arch, &m).unwrap_err();
        assert!(matches!(err, TraceError::TooLarge { .. }));
    }

    #[test]
    fn invalid_mapping_is_reported() {
        let (layer, arch, m) = fixture();
        let mut bad = m;
        bad.dram[Dim::M] = 3;
        let err = generate_trace(&layer, &arch, &bad).unwrap_err();
        assert!(matches!(err, TraceError::InvalidMapping(_)));
        assert!(err.to_string().contains("invalid mapping"));
    }
}
