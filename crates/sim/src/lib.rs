#![warn(missing_docs)]

//! Trace-driven tile-level simulation.
//!
//! The SecureLoop scheduler is purely analytical (paper §4.1): latency
//! is `max(compute, traffic / effective bandwidth)` under a perfect
//! double-buffering assumption, and traffic comes from a closed-form
//! reuse analysis. This crate *checks* both halves against an actual
//! execution trace:
//!
//! * [`trace`] walks the DRAM-level loop nest of a mapping in program
//!   order and emits every tile-fetch / write-back event. Summing the
//!   trace must reproduce the analytical
//!   [`AccessCounts`](secureloop_loopnest::AccessCounts) *exactly* —
//!   the integration tests assert it.
//! * [`replay`] plays the trace through a double-buffered pipeline
//!   (compute overlapped with DRAM + per-stream crypto engines) and
//!   reports a latency that the analytical bound must match up to
//!   fill/drain effects.
//!
//! # Example
//!
//! ```
//! use secureloop_arch::Architecture;
//! use secureloop_loopnest::Mapping;
//! use secureloop_sim::{generate_trace, replay};
//! use secureloop_workload::ConvLayer;
//!
//! let layer = ConvLayer::builder("l")
//!     .input_hw(4, 4)
//!     .channels(2, 2)
//!     .kernel(3, 3)
//!     .pad(1)
//!     .build()?;
//! let arch = Architecture::eyeriss_base();
//! let mapping = Mapping::untiled(&layer);
//! let trace = generate_trace(&layer, &arch, &mapping)?;
//! let result = replay(&trace, &arch);
//! assert!(result.total_cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod dram;
pub mod replay;
pub mod trace;

pub use dram::{replay_dram, DramSim, DramSimResult, DramTiming};
pub use replay::{replay, replay_detailed, ReplayResult};
pub use trace::{generate_trace, TileEvent, Trace, TraceError};
