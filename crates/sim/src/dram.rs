//! A bank/row/burst DRAM timing model.
//!
//! The scheduler abstracts the off-chip interface as a flat
//! bytes-per-cycle number (paper §5.1: LPDDR4 at 64 B/cycle). This
//! module checks how safe that abstraction is: it replays the tile
//! trace as addressed bursts through a banked DRAM with open-row
//! policy, counting activate/precharge penalties, and reports the
//! achieved bandwidth and row-hit rate.
//!
//! Timing values are expressed in *accelerator* cycles at the paper's
//! 100 MHz, which makes a modern LPDDR4/HBM2 part look fast. The model
//! is deliberately conservative — an in-order controller with no
//! activate/transfer overlap, so it bounds the abstraction from below
//! while the flat model bounds it from above. Two effects separate
//! achieved from peak bandwidth: row/activate overhead (small for
//! sequential tile streams, larger when interleaved streams collide on
//! banks) and burst-granularity waste (tiles smaller than a 64 B burst
//! still occupy a whole burst slot).
//! [`DramSimResult::bus_efficiency`] isolates the former, which is the
//! quantity the paper's flat bytes-per-cycle abstraction assumes is
//! close to 1.

use secureloop_workload::Datatype;

use crate::trace::Trace;

/// DRAM timing parameters, in accelerator cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Number of banks (tensor streams spread across them).
    pub banks: usize,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Bytes transferred per burst.
    pub burst_bytes: u64,
    /// Cycles per burst transfer on the data bus.
    pub burst_cycles: u64,
    /// Row-activate latency (row miss, bank precharged).
    pub t_rcd: u64,
    /// Precharge latency (row conflict).
    pub t_rp: u64,
    /// Column access latency added to every new request run.
    pub t_cas: u64,
}

impl DramTiming {
    /// LPDDR4-class timing at a 100 MHz accelerator clock: the 64 B/
    /// cycle interface moves one 64 B burst per cycle; activates cost
    /// a handful of accelerator cycles.
    pub fn lpddr4() -> Self {
        DramTiming {
            banks: 8,
            row_bytes: 2048,
            burst_bytes: 64,
            burst_cycles: 1,
            t_rcd: 2,
            t_rp: 2,
            t_cas: 1,
        }
    }

    /// HBM2-class timing: same per-pseudo-channel burst rate here (the
    /// paper's HBM2 point keeps 64 B/cycle), many more banks.
    pub fn hbm2() -> Self {
        DramTiming {
            banks: 32,
            row_bytes: 1024,
            burst_bytes: 64,
            burst_cycles: 1,
            t_rcd: 2,
            t_rp: 2,
            t_cas: 1,
        }
    }

    /// Peak bandwidth in bytes per cycle.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.burst_bytes as f64 / self.burst_cycles as f64
    }
}

/// Result of replaying addressed traffic through the DRAM model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramSimResult {
    /// Total service cycles on the DRAM interface.
    pub cycles: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Row-buffer hit rate over bursts.
    pub row_hit_rate: f64,
    /// Bursts issued on the bus (each moves up to `burst_bytes`).
    pub bursts: u64,
    /// Cycles a burst occupies on the bus.
    pub burst_cycles: u64,
}

impl DramSimResult {
    /// Achieved bandwidth over *useful* bytes (burst-granularity waste
    /// included in the denominator).
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes as f64 / self.cycles.max(1) as f64
    }

    /// Fraction of service cycles spent moving bursts (the rest is
    /// activate/precharge/CAS overhead). This is the efficiency the
    /// flat-bandwidth abstraction assumes is near 1.
    pub fn bus_efficiency(&self) -> f64 {
        (self.bursts * self.burst_cycles) as f64 / self.cycles.max(1) as f64
    }
}

/// A banked open-row DRAM.
#[derive(Debug, Clone)]
pub struct DramSim {
    timing: DramTiming,
    open_rows: Vec<Option<u64>>,
    /// End addresses of recent access streams; a new access continuing
    /// exactly at one of them keeps that DMA stream pipelined (no
    /// fresh CAS, and the partially-filled final burst is not paid
    /// twice). Bounded: one slot per concurrent tensor stream.
    stream_ends: Vec<u64>,
    cycles: u64,
    bytes: u64,
    bursts: u64,
    row_hits: u64,
    #[doc(hidden)]
    pub dbg_cas: u64,
    #[doc(hidden)]
    pub dbg_act: u64,
    #[doc(hidden)]
    pub dbg_conflict: u64,
}

impl DramSim {
    /// Fresh device with all banks precharged.
    pub fn new(timing: DramTiming) -> Self {
        DramSim {
            open_rows: vec![None; timing.banks],
            timing,
            stream_ends: Vec::new(),
            cycles: 0,
            bytes: 0,
            bursts: 0,
            row_hits: 0,
            dbg_cas: 0,
            dbg_act: 0,
            dbg_conflict: 0,
        }
    }

    /// Service a sequential access of `bytes` starting at `addr`.
    pub fn access(&mut self, addr: u64, bytes: u64) {
        let t = self.timing;
        let mut remaining = bytes;
        let mut cursor = addr;
        // Contiguous continuation of a recent stream keeps its DMA
        // pipeline running: no fresh CAS.
        let continued = self.stream_ends.iter().position(|&e| e == addr);
        if let Some(i) = continued {
            self.stream_ends.swap_remove(i);
        }
        let mut first_of_run = continued.is_none();
        // Bytes within a burst already paid by the continued stream.
        let mut paid_until = if continued.is_some() {
            addr.next_multiple_of(t.burst_bytes)
        } else {
            addr
        };
        while remaining > 0 {
            let row = cursor / t.row_bytes;
            // Bank partitioning: the high address bits (one tensor per
            // 4 GiB region) select a disjoint bank group per stream, so
            // concurrent tensor streams do not thrash each other's open
            // rows — the standard DMA bank-allocation discipline.
            let group = (t.banks as u64 / 4).max(2);
            let bank = (((cursor >> 32) * group + row % group) % t.banks as u64) as usize;
            let activated = match self.open_rows[bank] {
                Some(open) if open == row => {
                    if first_of_run {
                        self.cycles += t.t_cas;
                        self.dbg_cas += 1;
                    }
                    false
                }
                Some(_) => {
                    self.cycles += t.t_rp + t.t_rcd + t.t_cas;
                    self.dbg_conflict += 1;
                    self.open_rows[bank] = Some(row);
                    true
                }
                None => {
                    self.cycles += t.t_rcd + t.t_cas;
                    self.dbg_act += 1;
                    self.open_rows[bank] = Some(row);
                    true
                }
            };
            first_of_run = false;
            // Burst within the row; bursts after the activating one
            // stream from the open row buffer. Bytes under `paid_until`
            // ride a burst the previous access already issued.
            let in_row = t.row_bytes - cursor % t.row_bytes;
            let chunk = remaining.min(in_row);
            let end = cursor + chunk;
            let charge_from = cursor.max(paid_until.min(end));
            let bursts = if end > charge_from {
                (end.next_multiple_of(t.burst_bytes)
                    - (charge_from / t.burst_bytes) * t.burst_bytes)
                    / t.burst_bytes
            } else {
                0
            };
            if bursts > 0 {
                paid_until = end.next_multiple_of(t.burst_bytes);
            }
            self.cycles += bursts * t.burst_cycles;
            self.bursts += bursts;
            self.row_hits += bursts - u64::from(activated).min(bursts);
            self.bytes += chunk;
            cursor += chunk;
            remaining -= chunk;
        }
        self.stream_ends.push(cursor);
        if self.stream_ends.len() > 8 {
            self.stream_ends.remove(0);
        }
    }

    /// Snapshot the statistics.
    pub fn result(&self) -> DramSimResult {
        DramSimResult {
            cycles: self.cycles,
            bytes: self.bytes,
            row_hit_rate: if self.bursts == 0 {
                0.0
            } else {
                self.row_hits as f64 / self.bursts as f64
            },
            bursts: self.bursts,
            burst_cycles: self.timing.burst_cycles,
        }
    }
}

/// Replay a tile trace as addressed DRAM traffic: each tensor lives in
/// its own address range, each tile fetch streams sequentially from a
/// per-tensor rotating cursor (tiles are laid out back to back).
pub fn replay_dram(trace: &Trace, timing: DramTiming) -> DramSimResult {
    let mut sim = DramSim::new(timing);
    // Generous disjoint tensor bases.
    const TENSOR_STRIDE: u64 = 1 << 32;
    let word_bytes = u64::from(trace.word_bits).div_ceil(8);
    let mut cursors = [0u64; 3];
    for e in &trace.events {
        let i = secureloop_loopnest::dt_index(e.dt);
        let base = (i as u64 + 1) * TENSOR_STRIDE;
        let bytes = e.words * word_bytes;
        sim.access(base + cursors[i], bytes);
        // Tiles are contiguous; wrap the cursor to keep addresses in a
        // tensor-sized window (16 MiB here) as real tilings revisit.
        cursors[i] = (cursors[i] + bytes) % (16 << 20);
        let _ = Datatype::ALL; // address layout documented by dt index
    }
    sim.result()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_is_near_peak() {
        let mut sim = DramSim::new(DramTiming::lpddr4());
        sim.access(0, 1 << 20); // 1 MiB sequential
        let r = sim.result();
        assert!(r.row_hit_rate > 0.9, "hit rate {}", r.row_hit_rate);
        let eff = r.bytes_per_cycle() / DramTiming::lpddr4().peak_bytes_per_cycle();
        assert!(eff > 0.8, "efficiency {eff}");
    }

    #[test]
    fn row_thrashing_costs_bandwidth() {
        let t = DramTiming::lpddr4();
        let mut sim = DramSim::new(t);
        // Alternate between two rows mapped to the same bank.
        let stride = t.row_bytes * t.banks as u64;
        for i in 0..1000 {
            let row = if i % 2 == 0 { 0 } else { stride };
            sim.access(row, 64);
        }
        let r = sim.result();
        assert!(r.row_hit_rate < 0.05, "hit rate {}", r.row_hit_rate);
        let eff = r.bytes_per_cycle() / t.peak_bytes_per_cycle();
        assert!(eff < 0.5, "efficiency {eff} should collapse");
    }

    #[test]
    fn cross_row_access_spans_banks() {
        let t = DramTiming::lpddr4();
        let mut sim = DramSim::new(t);
        // 3 rows' worth starting mid-row: touches 4 rows.
        sim.access(t.row_bytes / 2, 3 * t.row_bytes);
        let r = sim.result();
        assert_eq!(r.bytes, 3 * t.row_bytes);
        assert!(r.cycles >= 3 * t.row_bytes / t.burst_bytes);
    }

    #[test]
    fn hbm2_has_more_banks() {
        assert!(DramTiming::hbm2().banks > DramTiming::lpddr4().banks);
        assert_eq!(DramTiming::hbm2().peak_bytes_per_cycle(), 64.0);
    }

    #[test]
    fn tile_traces_sustain_high_efficiency() {
        // The claim behind the paper's flat-bandwidth abstraction:
        // tile-granular streams are sequential enough that the banked
        // model achieves close to peak.
        use secureloop_arch::Architecture;
        use secureloop_loopnest::Mapping;
        use secureloop_workload::{ConvLayer, Dim, DimMap};
        let layer = ConvLayer::builder("t")
            .input_hw(18, 18)
            .channels(8, 16)
            .kernel(3, 3)
            .build()
            .unwrap();
        let arch = Architecture::eyeriss_base();
        let mut m = Mapping::untiled(&layer);
        m.rf = DimMap::splat(1);
        m.rf[Dim::S] = 3;
        m.rf[Dim::C] = 2;
        m.spatial_y[Dim::R] = 3;
        m.spatial_x[Dim::Q] = 8;
        m.glb[Dim::P] = 4;
        m.dram[Dim::M] = 16;
        m.dram[Dim::C] = 4;
        m.dram[Dim::P] = 4;
        m.dram[Dim::Q] = 2;
        m.dram_order = [Dim::N, Dim::M, Dim::P, Dim::Q, Dim::C, Dim::R, Dim::S];
        let trace = crate::generate_trace(&layer, &arch, &m).unwrap();
        let r = replay_dram(&trace, DramTiming::lpddr4());
        assert_eq!(r.bytes, trace.total_bits() / 8);
        // Even this pessimistic in-order controller keeps the bus
        // mostly busy on interleaved tile streams; a reordering
        // controller would close the remaining gap toward the paper's
        // flat-bandwidth abstraction.
        let eff = r.bus_efficiency();
        assert!(eff > 0.55, "bus efficiency {eff:.2}");
        assert!(r.row_hit_rate > 0.3, "hit rate {}", r.row_hit_rate);
    }
}
