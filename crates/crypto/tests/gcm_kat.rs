//! Known-answer tests for AES-GCM and GHASH against published NIST
//! vectors: SP 800-38D's original validation set (the McGrew–Viega
//! test cases, including the non-96-bit-IV ones that exercise the
//! `J0 = GHASH(IV)` path) and CAVS `gcmEncryptExtIV128` vectors for
//! the zero-length plaintext/AAD corners. The unit tests inside
//! `gcm.rs` cover cases 1–4 and 14; this suite pins the rest of the
//! conformance surface.

use secureloop_crypto::ghash::Ghash;
use secureloop_crypto::{Aes128, AesGcm, Tag};

fn hex(s: &str) -> Vec<u8> {
    assert!(s.len() % 2 == 0, "odd-length hex string");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("valid hex"))
        .collect()
}

fn key128(s: &str) -> [u8; 16] {
    hex(s).try_into().expect("16-byte key")
}

fn key256(s: &str) -> [u8; 32] {
    hex(s).try_into().expect("32-byte key")
}

fn tag(s: &str) -> Tag {
    Tag(hex(s).try_into().expect("16-byte tag"))
}

/// The shared key/plaintext/AAD of McGrew–Viega cases 3–6.
const MV_KEY: &str = "feffe9928665731c6d6a8f9467308308";
const MV_PT60: &str = "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
                       1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39";
const MV_AAD: &str = "feedfacedeadbeeffeedfacedeadbeefabaddad2";

/// Assert one encrypt+decrypt round against a published vector.
fn check_ext_iv(gcm: &AesGcm, iv: &str, pt: &str, aad: &str, want_ct: &str, want_tag: &str) {
    let (iv, pt, aad) = (hex(iv), hex(pt), hex(aad));
    let (ct, t) = gcm.encrypt_iv(&iv, &pt, &aad);
    assert_eq!(ct, hex(want_ct), "ciphertext mismatch");
    assert_eq!(t, tag(want_tag), "tag mismatch");
    let back = gcm
        .decrypt_iv(&iv, &ct, &aad, &t)
        .expect("published tag must authenticate");
    assert_eq!(back, pt);
}

/// McGrew–Viega case 5: AES-128, 60-byte PT, AAD, **8-byte IV** —
/// the short-IV branch of `J0 = GHASH(H; IV ∥ pad ∥ len(IV))`.
#[test]
fn mcgrew_viega_case_5_short_iv() {
    check_ext_iv(
        &AesGcm::new(&key128(MV_KEY)),
        "cafebabefacedbad",
        MV_PT60,
        MV_AAD,
        "61353b4c2806934a777ff51fa22a4755699b2a714fcdc6f83766e5f97b6c7423\
         73806900e49f24b22b097544d4896b424989b5e1ebac0f07c23f4598",
        "3612d2e79e3b0785561be14aaca2fccb",
    );
}

/// McGrew–Viega case 6: same key/PT/AAD with a **60-byte IV** — the
/// multi-block GHASH-derived counter.
#[test]
fn mcgrew_viega_case_6_long_iv() {
    check_ext_iv(
        &AesGcm::new(&key128(MV_KEY)),
        "9313225df88406e555909c5aff5269aa6a7a9538534f7da1e4c303d2a318a728\
         c3c0c95156809539fcf0e2429a6b525416aedbf5a0de6a57a637b39b",
        MV_PT60,
        MV_AAD,
        "8ce24998625615b603a033aca13fb894be9112a5c3a211a8ba262a3cca7e2ca7\
         01e4a9a4fba43c90ccdcb281d48c7c6fd62875d2aca417034c34aee5",
        "619cc5aefffe0bfa462af43c1699d050",
    );
}

/// CAVS gcmEncryptExtIV128, zero-length PT **and** AAD: GCM reduces to
/// a pure MAC of nothing — only `E_K(J0)` masked by an empty GHASH.
#[test]
fn cavs_zero_plaintext_zero_aad() {
    let gcm = AesGcm::new(&key128("cf063a34d4a9a76c2c86787d3f96db71"));
    let iv = hex("113b9785971864c83b01c787");
    let (ct, t) = gcm.encrypt_iv(&iv, &[], &[]);
    assert!(ct.is_empty());
    assert_eq!(t, tag("72ac8493e3a5228b5d130a69d2510e42"));
    assert_eq!(gcm.decrypt_iv(&iv, &[], &[], &t).expect("authentic"), b"");
}

/// CAVS gcmEncryptExtIV128, zero-length PT with 16-byte AAD: the tag
/// authenticates AAD alone.
#[test]
fn cavs_zero_plaintext_with_aad() {
    let gcm = AesGcm::new(&key128("77be63708971c4e240d1cb79e8d77feb"));
    let iv = hex("e0e00f19fed7ba0136a797f3");
    let aad = hex("7a43ec1d9c0a5a78a0b16533a6213cab");
    let (ct, t) = gcm.encrypt_iv(&iv, &[], &aad);
    assert!(ct.is_empty());
    assert_eq!(t, tag("209fcc8d3675ed938e9c7166709dd946"));
    // Tampered AAD must not authenticate.
    let mut bad = aad.clone();
    bad[0] ^= 1;
    assert!(gcm.decrypt_iv(&iv, &[], &bad, &t).is_err());
}

/// McGrew–Viega case 13: AES-256, all inputs empty.
#[test]
fn mcgrew_viega_case_13_aes256_empty() {
    let gcm = AesGcm::new_256(&[0u8; 32]);
    let (ct, t) = gcm.encrypt(&[0u8; 12], &[], &[]);
    assert!(ct.is_empty());
    assert_eq!(t, tag("530f8afbc74536b9a963b4f1c4cb738b"));
}

/// McGrew–Viega case 15: AES-256, full 64-byte plaintext, no AAD.
#[test]
fn mcgrew_viega_case_15_aes256_full_block_pt() {
    let key = key256("feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308");
    check_ext_iv(
        &AesGcm::new_256(&key),
        "cafebabefacedbaddecaf888",
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
         1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        "",
        "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa\
         8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662898015ad",
        "b094dac5d93471bdec1a502270e3cc6c",
    );
}

// ---------------------------------------------------------------------------
// GHASH vectors
// ---------------------------------------------------------------------------

/// GHASH of nothing is zero: `Y = (0 ⊕ len(0,0)) · H = 0`.
#[test]
fn ghash_of_empty_input_is_zero() {
    let h: [u8; 16] = hex("66e94bd4ef8a2c3b884cfa59ca342b2e").try_into().unwrap();
    let mut g = Ghash::new(h);
    g.update_lengths(0, 0);
    assert_eq!(g.finalize(), [0u8; 16]);
}

/// McGrew–Viega case 2's intermediate: H = E_0(0), one zero CT block,
/// GHASH = f38cbb1ad69223dcc3457ae5b6b0f885 (the spec prints this
/// value explicitly).
#[test]
fn ghash_single_zero_block_vector() {
    let h = Aes128::new(&[0u8; 16]).encrypt(&[0u8; 16]);
    assert_eq!(h.to_vec(), hex("66e94bd4ef8a2c3b884cfa59ca342b2e"));
    let mut g = Ghash::new(h);
    let ct = hex("0388dace60b6a392f328c2b971b2fe78");
    g.update_padded(&ct);
    g.update_lengths(0, 128);
    assert_eq!(
        g.finalize().to_vec(),
        hex("f38cbb1ad69223dcc3457ae5b6b0f885")
    );
}

/// Cross-check GHASH against the tag relation on case 4:
/// `tag = GHASH(H; A, C) ⊕ E_K(J0)`. Rearranged, recomputing GHASH by
/// hand over the spec's ciphertext and XOR-ing with the first keystream
/// block must reproduce the published tag.
#[test]
fn ghash_tag_relation_case_4() {
    let key = key128(MV_KEY);
    let aes = Aes128::new(&key);
    let h = aes.encrypt(&[0u8; 16]);
    let ct = hex(
        "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
         21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
    );
    let aad = hex(MV_AAD);
    let mut g = Ghash::new(h);
    g.update_padded(&aad);
    g.update_padded(&ct);
    g.update_lengths(aad.len() as u64 * 8, ct.len() as u64 * 8);
    let s = g.finalize();

    let mut j0 = [0u8; 16];
    j0[..12].copy_from_slice(&hex("cafebabefacedbaddecaf888"));
    j0[15] = 1;
    let ek0 = aes.encrypt(&j0);
    let mut t = [0u8; 16];
    for i in 0..16 {
        t[i] = s[i] ^ ek0[i];
    }
    assert_eq!(t.to_vec(), hex("5bc94fbc3221a5db94fae95ae7121a47"));
}

/// GHASH linearity: GHASH(H; A, C1∥C2) equals feeding the blocks one
/// at a time — the incremental `update_block` API matches the batch
/// `update_padded` API on block-aligned input.
#[test]
fn ghash_incremental_matches_batch() {
    let h: [u8; 16] = hex("66e94bd4ef8a2c3b884cfa59ca342b2e").try_into().unwrap();
    let data = hex("0388dace60b6a392f328c2b971b2fe78c8c2d9d7d9f2c3a4b5e6f70811223344");
    let mut batch = Ghash::new(h);
    batch.update_padded(&data);
    batch.update_lengths(0, data.len() as u64 * 8);

    let mut inc = Ghash::new(h);
    for chunk in data.chunks(16) {
        inc.update_block(chunk.try_into().expect("aligned"));
    }
    inc.update_lengths(0, data.len() as u64 * 8);
    assert_eq!(batch.finalize(), inc.finalize());
}
