//! Known-answer vectors for each protection-scheme backend's per-block
//! cost arithmetic.
//!
//! Every backend's cycle/energy/area numbers are pinned here as explicit
//! constants — if any model number drifts, the exact expected value in
//! these tables fails, which is the point: cached candidate lists and
//! committed goldens depend on the numbers being stable. The vectors
//! also exercise the two sharp edges of the cost arithmetic: block
//! boundary rounding (partial blocks always round up to the scheme's
//! native granularity) and zero-length streams (always free).

use secureloop_crypto::{EngineClass, ProtectionScheme, SchemeId};

/// One known-answer row: scheme x class → (cycles/block, pJ/block,
/// kGates, block bytes).
struct Kat {
    scheme: SchemeId,
    class: EngineClass,
    cycles_per_block: u64,
    energy_per_block_pj: f64,
    area_kgates: f64,
    block_bytes: u64,
}

const KATS: &[Kat] = &[
    // AES-GCM: Table 2 stage sums — aes + gf energy/area, max of the
    // two initiation intervals.
    Kat {
        scheme: SchemeId::AesGcm,
        class: EngineClass::Pipelined,
        cycles_per_block: 1,
        energy_per_block_pj: 165.1 + 57.7,
        area_kgates: 78.8 + 60.1,
        block_bytes: 16,
    },
    Kat {
        scheme: SchemeId::AesGcm,
        class: EngineClass::Parallel,
        cycles_per_block: 11,
        energy_per_block_pj: 194.6 + 82.4,
        area_kgates: 9.2 + 9.7,
        block_bytes: 16,
    },
    Kat {
        scheme: SchemeId::AesGcm,
        class: EngineClass::Serial,
        cycles_per_block: 336,
        energy_per_block_pj: 768.0 + 345.6,
        area_kgates: 3.0 + 3.3,
        block_bytes: 16,
    },
    // Seculator: 16-byte blocks, latency-hiding pipeline.
    Kat {
        scheme: SchemeId::Seculator,
        class: EngineClass::Pipelined,
        cycles_per_block: 1,
        energy_per_block_pj: 96.4,
        area_kgates: 34.2,
        block_bytes: 16,
    },
    Kat {
        scheme: SchemeId::Seculator,
        class: EngineClass::Parallel,
        cycles_per_block: 4,
        energy_per_block_pj: 121.7,
        area_kgates: 11.8,
        block_bytes: 16,
    },
    // SeDA: 64-byte bulk blocks amortising the HW/SW handshake.
    Kat {
        scheme: SchemeId::Seda,
        class: EngineClass::Parallel,
        cycles_per_block: 48,
        energy_per_block_pj: 838.0,
        area_kgates: 10.4,
        block_bytes: 64,
    },
    Kat {
        scheme: SchemeId::Seda,
        class: EngineClass::Serial,
        cycles_per_block: 1280,
        energy_per_block_pj: 3158.4,
        area_kgates: 3.4,
        block_bytes: 64,
    },
];

#[test]
fn per_block_known_answers() {
    for k in KATS {
        let m = k.scheme.model();
        assert!(m.supports(k.class), "{} on {}", k.scheme, k.class);
        assert_eq!(
            m.cycles_per_block(k.class),
            k.cycles_per_block,
            "{} {} cycles",
            k.scheme,
            k.class
        );
        assert_eq!(
            m.energy_per_block_pj(k.class).to_bits(),
            k.energy_per_block_pj.to_bits(),
            "{} {} energy",
            k.scheme,
            k.class
        );
        assert_eq!(
            m.area_kgates(k.class).to_bits(),
            k.area_kgates.to_bits(),
            "{} {} area",
            k.scheme,
            k.class
        );
        assert_eq!(m.block_bytes(), k.block_bytes, "{} block", k.scheme);
    }
}

#[test]
fn derived_quantities_follow_block_arithmetic() {
    for k in KATS {
        let m = k.scheme.model();
        let expect_bpc = k.block_bytes as f64 / k.cycles_per_block as f64;
        assert_eq!(m.bytes_per_cycle(k.class).to_bits(), expect_bpc.to_bits());
        let expect_pj_bit = k.energy_per_block_pj / (k.block_bytes as f64 * 8.0);
        assert_eq!(
            m.energy_per_bit_pj(k.class).to_bits(),
            expect_pj_bit.to_bits()
        );
    }
}

#[test]
fn block_boundary_rounding() {
    for k in KATS {
        let m = k.scheme.model();
        let b = k.block_bytes;
        let c = k.cycles_per_block;
        // One byte costs a whole block; an exact block costs exactly
        // one; one byte past the boundary costs two.
        assert_eq!(m.cycles_for_bytes(k.class, 1), c, "{} 1B", k.scheme);
        assert_eq!(m.cycles_for_bytes(k.class, b - 1), c, "{} b-1", k.scheme);
        assert_eq!(m.cycles_for_bytes(k.class, b), c, "{} b", k.scheme);
        assert_eq!(
            m.cycles_for_bytes(k.class, b + 1),
            2 * c,
            "{} b+1",
            k.scheme
        );
        // Large streams scale linearly in whole blocks.
        assert_eq!(
            m.cycles_for_bytes(k.class, 1000 * b + 1),
            1001 * c,
            "{} bulk",
            k.scheme
        );
    }
}

#[test]
fn zero_length_streams_are_free() {
    for id in SchemeId::ALL {
        let m = id.model();
        for class in EngineClass::ALL {
            assert_eq!(m.cycles_for_bytes(class, 0), 0, "{id} on {class}");
        }
    }
}

#[test]
fn unsupported_combinations_price_at_infinity_not_panic() {
    let secu = SchemeId::Seculator.model();
    assert!(!secu.supports(EngineClass::Serial));
    assert!(secu.energy_per_bit_pj(EngineClass::Serial).is_infinite());
    assert!(secu.area_kgates(EngineClass::Serial).is_infinite());
    let seda = SchemeId::Seda.model();
    assert!(!seda.supports(EngineClass::Pipelined));
    assert!(seda.energy_per_bit_pj(EngineClass::Pipelined).is_infinite());
    // Throughput collapses towards zero for the impossible realisation.
    assert!(seda.bytes_per_cycle(EngineClass::Pipelined) < 1e-9);
}
