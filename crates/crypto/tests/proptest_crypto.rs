//! Property tests for the functional cryptographic substrate.

use proptest::prelude::*;

use secureloop_crypto::merkle::MerkleTree;
use secureloop_crypto::{AesGcm, CounterTracker};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gcm_roundtrips_any_payload(
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 12]>(),
        pt in proptest::collection::vec(any::<u8>(), 0..600),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let gcm = AesGcm::new(&key);
        let (ct, tag) = gcm.encrypt(&iv, &pt, &aad);
        prop_assert_eq!(ct.len(), pt.len());
        let back = gcm.decrypt(&iv, &ct, &aad, &tag).expect("tag verifies");
        prop_assert_eq!(back, pt);
    }

    #[test]
    fn gcm256_roundtrips_any_payload(
        key in any::<[u8; 32]>(),
        iv in proptest::collection::vec(any::<u8>(), 1..48),
        pt in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let gcm = AesGcm::new_256(&key);
        let (ct, tag) = gcm.encrypt_iv(&iv, &pt, b"");
        let back = gcm.decrypt_iv(&iv, &ct, b"", &tag).expect("tag verifies");
        prop_assert_eq!(back, pt);
    }

    #[test]
    fn any_single_bit_flip_is_detected(
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 12]>(),
        pt in proptest::collection::vec(any::<u8>(), 1..200),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let gcm = AesGcm::new(&key);
        let (mut ct, tag) = gcm.encrypt(&iv, &pt, b"");
        let i = byte_idx.index(ct.len());
        ct[i] ^= 1 << bit;
        prop_assert!(gcm.decrypt(&iv, &ct, b"", &tag).is_err());
    }

    #[test]
    fn ciphertexts_differ_across_ivs(
        key in any::<[u8; 16]>(),
        iv1 in any::<[u8; 12]>(),
        iv2 in any::<[u8; 12]>(),
        pt in proptest::collection::vec(any::<u8>(), 16..64),
    ) {
        prop_assume!(iv1 != iv2);
        let gcm = AesGcm::new(&key);
        let (c1, t1) = gcm.encrypt(&iv1, &pt, b"");
        let (c2, t2) = gcm.encrypt(&iv2, &pt, b"");
        prop_assert!(c1 != c2 || t1 != t2);
    }

    #[test]
    fn merkle_survives_random_update_sequences(
        n_leaves in 1usize..64,
        arity in 2usize..6,
        updates in proptest::collection::vec(
            (any::<prop::sample::Index>(), any::<[u8; 16]>()),
            0..20
        ),
    ) {
        let mut leaves: Vec<[u8; 16]> = (0..n_leaves)
            .map(|i| {
                let mut l = [0u8; 16];
                l[0] = i as u8;
                l
            })
            .collect();
        let mut tree = MerkleTree::build([0x5a; 16], arity, &leaves);
        for (idx, new_leaf) in updates {
            let i = idx.index(n_leaves);
            tree.update(i, new_leaf);
            leaves[i] = new_leaf;
        }
        for (i, l) in leaves.iter().enumerate() {
            prop_assert!(tree.verify(i, l).is_ok(), "leaf {i} failed");
        }
        // And a wrong leaf never verifies.
        let mut bogus = leaves[0];
        bogus[7] ^= 0xff;
        prop_assert!(tree.verify(0, &bogus).is_err());
    }

    #[test]
    fn counter_tracker_never_reuses_ivs(
        ops in proptest::collection::vec((0u32..4, 0u32..8, any::<bool>()), 1..80),
    ) {
        let mut t = CounterTracker::new();
        let mut seen = std::collections::HashSet::new();
        for (tensor, block, write) in ops {
            if write {
                let iv = t.write_iv(tensor, block);
                prop_assert!(seen.insert(iv), "write IV reused");
            } else {
                // Reads reuse the latest written IV by design — only
                // *writes* must be unique under one key.
                let _ = t.read_iv(tensor, block);
            }
        }
    }
}
