//! GHASH: the universal hash of GCM over GF(2¹²⁸).
//!
//! GCM uses the "reflected" bit convention of NIST SP 800-38D: the
//! polynomial is x¹²⁸ + x⁷ + x² + x + 1, with bit 0 of the first byte as
//! the most significant coefficient. We store blocks as big-endian `u128`
//! and use the standard shift-and-reduce multiplication.

/// One 128-bit GHASH block, big-endian.
pub type Block = [u8; 16];

/// The reduction constant R = 11100001 || 0^120 (SP 800-38D §6.3).
const R: u128 = 0xe1000000_00000000_00000000_00000000;

fn to_u128(b: &Block) -> u128 {
    u128::from_be_bytes(*b)
}

fn from_u128(v: u128) -> Block {
    v.to_be_bytes()
}

/// Multiply two elements of GF(2¹²⁸) in the GCM convention.
///
/// Follows Algorithm 1 of SP 800-38D: process the bits of `x` from the
/// most significant down, accumulating shifted copies of `y`.
pub fn gf128_mul(x: &Block, y: &Block) -> Block {
    let xv = to_u128(x);
    let mut v = to_u128(y);
    let mut z = 0u128;
    for i in 0..128 {
        if (xv >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    from_u128(z)
}

/// Incremental GHASH state keyed by `H = E_K(0¹²⁸)`.
#[derive(Clone)]
pub struct Ghash {
    h: Block,
    acc: u128,
}

impl std::fmt::Debug for Ghash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ghash").finish_non_exhaustive()
    }
}

impl Ghash {
    /// Create a GHASH instance with hash subkey `h`.
    pub fn new(h: Block) -> Self {
        Ghash { h, acc: 0 }
    }

    /// Absorb one full block.
    pub fn update_block(&mut self, block: &Block) {
        let x = from_u128(self.acc ^ to_u128(block));
        self.acc = to_u128(&gf128_mul(&x, &self.h));
    }

    /// Absorb arbitrary bytes, zero-padding the final partial block
    /// (exactly GCM's padding rule).
    pub fn update_padded(&mut self, data: &[u8]) {
        for chunk in data.chunks(16) {
            let mut b = [0u8; 16];
            b[..chunk.len()].copy_from_slice(chunk);
            self.update_block(&b);
        }
    }

    /// Absorb the GCM length block: `len(A) || len(C)` in bits.
    pub fn update_lengths(&mut self, aad_bits: u64, ct_bits: u64) {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&aad_bits.to_be_bytes());
        b[8..].copy_from_slice(&ct_bits.to_be_bytes());
        self.update_block(&b);
    }

    /// The current digest.
    pub fn finalize(&self) -> Block {
        from_u128(self.acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ONE: Block = {
        // The multiplicative identity in the GCM convention is the block
        // with only the x^0 coefficient set: 0x80 00 ... 00.
        let mut b = [0u8; 16];
        b[0] = 0x80;
        b
    };

    #[test]
    fn one_is_identity() {
        let a: Block = [
            0x66, 0xe9, 0x4b, 0xd4, 0xef, 0x8a, 0x2c, 0x3b, 0x88, 0x4c, 0xfa, 0x59, 0xca, 0x34,
            0x2b, 0x2e,
        ];
        assert_eq!(gf128_mul(&a, &ONE), a);
        assert_eq!(gf128_mul(&ONE, &a), a);
    }

    #[test]
    fn zero_annihilates() {
        let a = [0xabu8; 16];
        assert_eq!(gf128_mul(&a, &[0u8; 16]), [0u8; 16]);
    }

    #[test]
    fn multiplication_is_commutative() {
        let a = [0x12u8; 16];
        let mut b = [0u8; 16];
        b[3] = 0x55;
        b[15] = 0x9a;
        assert_eq!(gf128_mul(&a, &b), gf128_mul(&b, &a));
    }

    #[test]
    fn multiplication_distributes_over_xor() {
        let a = [0x0fu8; 16];
        let b = [0xd3u8; 16];
        let c = [0x71u8; 16];
        let bc: Block = {
            let mut t = [0u8; 16];
            for i in 0..16 {
                t[i] = b[i] ^ c[i];
            }
            t
        };
        let lhs = gf128_mul(&a, &bc);
        let mut rhs = gf128_mul(&a, &b);
        let rc = gf128_mul(&a, &c);
        for i in 0..16 {
            rhs[i] ^= rc[i];
        }
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ghash_known_answer() {
        // From McGrew-Viega test case 2: H = E_K(0) with K = 0 is
        // 66e94bd4ef8a2c3b884cfa59ca342b2e; GHASH(H, {}, C) with
        // C = 0388dace60b6a392f328c2b971b2fe78 gives
        // f38cbb1ad69223dcc3457ae5b6b0f885.
        let h: Block = [
            0x66, 0xe9, 0x4b, 0xd4, 0xef, 0x8a, 0x2c, 0x3b, 0x88, 0x4c, 0xfa, 0x59, 0xca, 0x34,
            0x2b, 0x2e,
        ];
        let c: Block = [
            0x03, 0x88, 0xda, 0xce, 0x60, 0xb6, 0xa3, 0x92, 0xf3, 0x28, 0xc2, 0xb9, 0x71, 0xb2,
            0xfe, 0x78,
        ];
        let mut g = Ghash::new(h);
        g.update_padded(&c);
        g.update_lengths(0, 128);
        let expect: Block = [
            0xf3, 0x8c, 0xbb, 0x1a, 0xd6, 0x92, 0x23, 0xdc, 0xc3, 0x45, 0x7a, 0xe5, 0xb6, 0xb0,
            0xf8, 0x85,
        ];
        assert_eq!(g.finalize(), expect);
    }

    #[test]
    fn padding_rule_zero_extends() {
        let h = [0x42u8; 16];
        let mut a = Ghash::new(h);
        a.update_padded(&[1, 2, 3]);
        let mut b = Ghash::new(h);
        let mut blk = [0u8; 16];
        blk[..3].copy_from_slice(&[1, 2, 3]);
        b.update_block(&blk);
        assert_eq!(a.finalize(), b.finalize());
    }
}
