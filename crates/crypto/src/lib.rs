#![warn(missing_docs)]

//! Cryptographic substrate for SecureLoop.
//!
//! SecureLoop models secure DNN accelerators whose off-chip traffic is
//! protected by AES-GCM authenticated encryption (paper §2.2). This crate
//! provides three things:
//!
//! 1. **A functional AES-128-GCM implementation** ([`aes`], [`ghash`],
//!    [`gcm`]) built from first principles and validated against the
//!    FIPS-197 and McGrew–Viega test vectors. The analytical scheduler
//!    never encrypts real data, but the functional engine backs the
//!    cycle-approximate simulator and demonstrates that the modelled
//!    hardware exists as an algorithm.
//! 2. **Engine cost models** ([`engine`]): the three AES-GCM hardware
//!    design points of Table 2 (fully-pipelined, parallel, serial), their
//!    bandwidth, per-block energy and area, and the Fig. 3 survey of
//!    published AES implementations ([`survey`]). The Table-2 numbers are
//!    one backend of the pluggable [`scheme::ProtectionScheme`] trait,
//!    alongside an unprotected baseline and Seculator/SeDA-style
//!    alternatives ([`scheme`]).
//! 3. **A cycle-approximate engine simulator** ([`sim`]) that replays a
//!    stream of block requests through an initiation-interval pipeline
//!    model and validates the closed-form bandwidth used by the scheduler
//!    (paper §4.1).
//!
//! # Example
//!
//! ```
//! use secureloop_crypto::{AesGcm, EngineClass};
//!
//! // Functional substrate: authenticated encryption round-trips.
//! let gcm = AesGcm::new(&[0u8; 16]);
//! let iv = [7u8; 12];
//! let (ct, tag) = gcm.encrypt(&iv, b"tile bytes", b"");
//! assert_eq!(gcm.decrypt(&iv, &ct, b"", &tag).unwrap(), b"tile bytes");
//!
//! // Cost model: the parallel engine moves 16 B per 11 cycles.
//! let eng = EngineClass::Parallel.engine();
//! assert!((eng.bytes_per_cycle() - 16.0 / 11.0).abs() < 1e-9);
//! ```

pub mod aes;
pub mod engine;
pub mod gcm;
pub mod ghash;
pub mod merkle;
pub mod scheme;
pub mod seed;
pub mod sim;
pub mod survey;

pub use aes::{Aes128, Aes256};
pub use engine::{AesGcmEngine, CryptoConfig, EngineClass, StageSpec};
pub use gcm::{AesGcm, GcmError, Tag};
pub use merkle::{IntegrityError, MerkleTree};
pub use scheme::{ProtectionScheme, SchemeId};
pub use seed::{CounterTracker, SeedGenerator};
