//! Merkle (hash) tree integrity — the CPU-TEE baseline that secure DNN
//! accelerators avoid.
//!
//! General-purpose TEEs protect counter/tag freshness with an integrity
//! tree whose root lives on-chip (paper §2.2, §6 [9, 37, 51]): every
//! off-chip read climbs the tree to a trusted level, every write
//! updates the path. Tree-less designs [18, 19, 27] exploit the
//! accelerator's deterministic access pattern to derive counters
//! on-chip, paying no tree traffic — SecureLoop assumes exactly that.
//!
//! This module provides both:
//!
//! * [`MerkleTree`] — a functional arity-`k` hash tree over AuthBlock
//!   tags (nodes are GHASH digests keyed by the tree key), with
//!   verified reads, path updates, and tamper detection; and
//! * [`tree_traffic_bits`] — the analytical per-access traffic a
//!   CPU-style tree would add, used by the `treeless_ablation`
//!   experiment harness to quantify what the paper's assumption saves.

use crate::ghash::Ghash;

/// A functional arity-`k` Merkle tree over 16-byte leaves.
///
/// Node digests use GHASH keyed by a tree key — a universal hash is
/// sufficient here because every node is itself authenticated by its
/// parent up to the on-chip root.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    arity: usize,
    key: [u8; 16],
    /// `levels[0]` = leaves, `levels.last()` = [root].
    levels: Vec<Vec<[u8; 16]>>,
}

/// Error returned when verification fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityError {
    /// Tree level at which the mismatch was detected (0 = leaf).
    pub level: usize,
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "integrity check failed at tree level {}", self.level)
    }
}

impl std::error::Error for IntegrityError {}

impl MerkleTree {
    /// Build a tree of the given arity over `leaves`.
    ///
    /// # Panics
    ///
    /// Panics if `arity < 2` or `leaves` is empty.
    pub fn build(key: [u8; 16], arity: usize, leaves: &[[u8; 16]]) -> Self {
        assert!(arity >= 2, "tree arity must be at least 2");
        assert!(!leaves.is_empty(), "tree needs at least one leaf");
        let mut levels = vec![leaves.to_vec()];
        while levels.last().expect("nonempty").len() > 1 {
            let below = levels.last().expect("nonempty");
            let mut above = Vec::with_capacity(below.len().div_ceil(arity));
            for group in below.chunks(arity) {
                above.push(digest(&key, group));
            }
            levels.push(above);
        }
        MerkleTree { arity, key, levels }
    }

    /// The on-chip root digest.
    pub fn root(&self) -> [u8; 16] {
        self.levels.last().expect("nonempty")[0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// Whether the tree is empty (never true — construction requires a
    /// leaf).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Tree height in edges (0 for a single-leaf tree).
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }

    /// Verify leaf `index` against the root by recomputing its path.
    ///
    /// # Errors
    ///
    /// [`IntegrityError`] naming the first level whose recomputed
    /// digest mismatches the stored one.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn verify(&self, index: usize, leaf: &[u8; 16]) -> Result<(), IntegrityError> {
        assert!(index < self.len(), "leaf index out of range");
        if &self.levels[0][index] != leaf {
            return Err(IntegrityError { level: 0 });
        }
        let mut idx = index;
        for level in 0..self.height() {
            let parent = idx / self.arity;
            let start = parent * self.arity;
            let end = (start + self.arity).min(self.levels[level].len());
            let recomputed = digest(&self.key, &self.levels[level][start..end]);
            if recomputed != self.levels[level + 1][parent] {
                return Err(IntegrityError { level: level + 1 });
            }
            idx = parent;
        }
        Ok(())
    }

    /// Replace leaf `index` and update its path to the root.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn update(&mut self, index: usize, leaf: [u8; 16]) {
        assert!(index < self.len(), "leaf index out of range");
        self.levels[0][index] = leaf;
        let mut idx = index;
        for level in 0..self.height() {
            let parent = idx / self.arity;
            let start = parent * self.arity;
            let end = (start + self.arity).min(self.levels[level].len());
            let d = digest(&self.key, &self.levels[level][start..end]);
            self.levels[level + 1][parent] = d;
            idx = parent;
        }
    }

    /// Corrupt an internal node (test helper for tamper experiments).
    #[doc(hidden)]
    pub fn corrupt_node(&mut self, level: usize, index: usize) {
        self.levels[level][index][0] ^= 0xff;
    }
}

fn digest(key: &[u8; 16], children: &[[u8; 16]]) -> [u8; 16] {
    let mut g = Ghash::new(*key);
    for c in children {
        g.update_block(c);
    }
    g.update_lengths(0, (children.len() * 128) as u64);
    g.finalize()
}

/// Analytical tree traffic for `accesses` block touches against a tree
/// of `total_blocks` leaves with the given arity, when the top
/// `cached_levels` of the tree (including the root) are cached on-chip.
///
/// Each access moves one 128-bit node per uncached tree level (reads
/// climb, writes climb and rewrite — pass `rmw = true` to double).
pub fn tree_traffic_bits(
    accesses: u64,
    total_blocks: u64,
    arity: u64,
    cached_levels: u32,
    rmw: bool,
) -> u64 {
    assert!(arity >= 2, "tree arity must be at least 2");
    if total_blocks <= 1 {
        return 0;
    }
    // Height in edges.
    let mut height = 0u32;
    let mut span = 1u64;
    while span < total_blocks {
        span = span.saturating_mul(arity);
        height += 1;
    }
    let uncached = height.saturating_sub(cached_levels);
    let per_access = u64::from(uncached) * 128 * if rmw { 2 } else { 1 };
    accesses * per_access
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<[u8; 16]> {
        (0..n)
            .map(|i| {
                let mut l = [0u8; 16];
                l[..8].copy_from_slice(&(i as u64).to_be_bytes());
                l
            })
            .collect()
    }

    #[test]
    fn build_verify_roundtrip() {
        let tree = MerkleTree::build([7; 16], 4, &leaves(100));
        assert_eq!(tree.len(), 100);
        // height: 100 -> 25 -> 7 -> 2 -> 1 = 4 edges.
        assert_eq!(tree.height(), 4);
        for (i, l) in leaves(100).iter().enumerate() {
            tree.verify(i, l).unwrap();
        }
    }

    #[test]
    fn wrong_leaf_is_rejected() {
        let tree = MerkleTree::build([7; 16], 2, &leaves(16));
        let mut bad = leaves(16)[3];
        bad[5] ^= 1;
        assert_eq!(tree.verify(3, &bad), Err(IntegrityError { level: 0 }));
    }

    #[test]
    fn corrupted_internal_node_is_detected() {
        let mut tree = MerkleTree::build([7; 16], 2, &leaves(32));
        tree.corrupt_node(2, 1);
        // Some leaf under that node must fail at or below level 3
        // (where the corrupted digest no longer matches its parent).
        let l = leaves(32);
        let failures = (0..32).filter(|&i| tree.verify(i, &l[i]).is_err()).count();
        assert!(failures > 0);
    }

    #[test]
    fn update_restores_verification() {
        let mut tree = MerkleTree::build([9; 16], 4, &leaves(64));
        let root_before = tree.root();
        let mut new_leaf = [0xabu8; 16];
        new_leaf[15] = 1;
        tree.update(17, new_leaf);
        assert_ne!(tree.root(), root_before, "root must change");
        tree.verify(17, &new_leaf).unwrap();
        // Other leaves still verify against the new root.
        tree.verify(0, &leaves(64)[0]).unwrap();
    }

    #[test]
    fn single_leaf_tree() {
        let tree = MerkleTree::build([1; 16], 8, &leaves(1));
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.root(), leaves(1)[0]);
        tree.verify(0, &leaves(1)[0]).unwrap();
    }

    #[test]
    fn traffic_model_scales_with_height_and_caching() {
        // 4^5 = 1024 blocks, arity 4: height 5.
        let full = tree_traffic_bits(10, 1024, 4, 0, false);
        assert_eq!(full, 10 * 5 * 128);
        // Caching 2 levels removes 2 node fetches per access.
        let cached = tree_traffic_bits(10, 1024, 4, 2, false);
        assert_eq!(cached, 10 * 3 * 128);
        // Read-modify-write doubles.
        assert_eq!(tree_traffic_bits(10, 1024, 4, 2, true), 2 * cached);
        // Degenerate cases.
        assert_eq!(tree_traffic_bits(10, 1, 4, 0, false), 0);
        assert_eq!(tree_traffic_bits(10, 1024, 4, 99, false), 0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn unary_tree_rejected() {
        let _ = tree_traffic_bits(1, 8, 1, 0, false);
    }
}
