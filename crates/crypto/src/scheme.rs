//! Pluggable protection-scheme cost models.
//!
//! The paper hardwires AES-GCM per Table 2; ROADMAP item 3 lifts that
//! choice behind a trait so the DSE can also answer *which protection
//! scheme* is cheapest for a given network/accelerator, not just which
//! schedule. Four backends ship:
//!
//! * [`SchemeId::AesGcm`] — the paper's Table-2 model, and the default.
//!   Its arithmetic delegates to the same [`StageSpec`] numbers as
//!   [`AesGcmEngine`], so the refactor is bit-exact for every existing
//!   golden.
//! * [`SchemeId::None`] — the unprotected baseline: zero cycles, energy
//!   and area. Selecting it strips the crypto configuration entirely, so
//!   this model mostly documents the degenerate costs.
//! * [`SchemeId::Seculator`] — a Seculator-style low-latency secure-NPU
//!   pipeline (see PAPERS.md): version lookahead plus counter prefetch
//!   hide MAC latency, trading a truncated 32-bit tag and a leaner
//!   datapath for throughput close to the pipelined AES-GCM point at a
//!   fraction of its area.
//! * [`SchemeId::Seda`] — a SeDA-style HW/SW-synergy model (see
//!   PAPERS.md): bulk 64-byte authentication blocks amortise a software
//!   handshake, so per-block costs are high but per-byte costs remain
//!   competitive for streaming traffic.
//!
//! Each backend also carries *authentication-granularity rules*: its
//! native block size (cost rounding granularity) and default truncated
//! tag width, which feed the AuthBlock assignment via
//! [`CryptoConfig::tag_bits`].
//!
//! [`AesGcmEngine`]: crate::engine::AesGcmEngine
//! [`StageSpec`]: crate::engine::StageSpec
//! [`CryptoConfig::tag_bits`]: crate::engine::CryptoConfig

use std::fmt;

use crate::engine::EngineClass;

/// Identifier for one protection-scheme backend.
///
/// The canonical names (`none`, `aes-gcm`, `seculator`, `seda`) are what
/// the CLI `--scheme` flag, suite `crypto.scheme` fields, service job
/// specs and cache keys all use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchemeId {
    /// Unprotected baseline — no off-chip protection at all.
    None,
    /// AES-GCM per paper Table 2 (the default).
    AesGcm,
    /// Seculator-style low-latency secure pipeline.
    Seculator,
    /// SeDA-style HW/SW-synergy bulk protection.
    Seda,
}

impl SchemeId {
    /// Every backend, in report order (baseline first).
    pub const ALL: [SchemeId; 4] = [
        SchemeId::None,
        SchemeId::AesGcm,
        SchemeId::Seculator,
        SchemeId::Seda,
    ];

    /// Canonical lower-case name used by CLI flags, suite YAML, job
    /// specs and cache keys.
    pub fn name(self) -> &'static str {
        match self {
            SchemeId::None => "none",
            SchemeId::AesGcm => "aes-gcm",
            SchemeId::Seculator => "seculator",
            SchemeId::Seda => "seda",
        }
    }

    /// Human-facing display name for report tables.
    pub fn display_name(self) -> &'static str {
        match self {
            SchemeId::None => "Unprotected",
            SchemeId::AesGcm => "AES-GCM",
            SchemeId::Seculator => "Seculator",
            SchemeId::Seda => "SeDA",
        }
    }

    /// Parse a canonical name (the inverse of [`SchemeId::name`]).
    pub fn from_name(name: &str) -> Option<SchemeId> {
        match name {
            "none" => Some(SchemeId::None),
            "aes-gcm" => Some(SchemeId::AesGcm),
            "seculator" => Some(SchemeId::Seculator),
            "seda" => Some(SchemeId::Seda),
            _ => None,
        }
    }

    /// The cost model behind this identifier.
    pub fn model(self) -> &'static dyn ProtectionScheme {
        match self {
            SchemeId::None => &Unprotected,
            SchemeId::AesGcm => &AesGcmTable2,
            SchemeId::Seculator => &SeculatorPipeline,
            SchemeId::Seda => &SedaSynergy,
        }
    }
}

impl fmt::Display for SchemeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Cost model of one protection-scheme backend.
///
/// A scheme prices protected off-chip traffic per *block* (its native
/// authentication granularity) for each supported [`EngineClass`] design
/// point, and exposes the same derived quantities the scheduler consumed
/// from the hardwired AES-GCM engine: sustained bytes/cycle, pJ/bit and
/// kGates. Implementations must keep the derived default methods intact
/// for the default scheme — they reproduce the historical
/// `AesGcmEngine` arithmetic operation-for-operation, which is what
/// keeps the committed goldens bit-identical.
pub trait ProtectionScheme: Sync {
    /// This backend's identifier.
    fn id(&self) -> SchemeId;

    /// Canonical name (delegates to the identifier).
    fn name(&self) -> &'static str {
        self.id().name()
    }

    /// Whether the backend can be realised on the given engine design
    /// point. Unsupported combinations are rejected at configuration
    /// time (CLI, suite loader, service admission) rather than priced.
    fn supports(&self, class: EngineClass) -> bool;

    /// Native authentication-block granularity in bytes. Costs round
    /// partial blocks up to this boundary. Must be non-zero.
    fn block_bytes(&self) -> u64;

    /// Initiation interval: cycles between consecutive blocks on the
    /// given engine class. Zero means traffic is never throttled.
    fn cycles_per_block(&self, class: EngineClass) -> u64;

    /// Energy to protect one block, in pJ.
    fn energy_per_block_pj(&self, class: EngineClass) -> f64;

    /// Area of one engine instance, in kGates (40 nm-normalised).
    fn area_kgates(&self, class: EngineClass) -> f64;

    /// Default truncated authentication-tag width in bits, stored per
    /// AuthBlock.
    fn default_tag_bits(&self) -> u32;

    /// Sustained throughput in bytes per cycle (infinite when the
    /// scheme never throttles).
    fn bytes_per_cycle(&self, class: EngineClass) -> f64 {
        let cpb = self.cycles_per_block(class);
        if cpb == 0 {
            f64::INFINITY
        } else {
            self.block_bytes() as f64 / cpb as f64
        }
    }

    /// Energy per bit of protected traffic, in pJ.
    fn energy_per_bit_pj(&self, class: EngineClass) -> f64 {
        self.energy_per_block_pj(class) / (self.block_bytes() as f64 * 8.0)
    }

    /// Cycles to process `bytes` of traffic (partial blocks round up —
    /// authentication always covers whole blocks).
    fn cycles_for_bytes(&self, class: EngineClass, bytes: u64) -> u64 {
        bytes.div_ceil(self.block_bytes()) * self.cycles_per_block(class)
    }
}

/// The unprotected baseline: no engine, no throttling, no energy, no
/// area, no tags.
///
/// Selecting `--scheme none` strips the crypto configuration from the
/// architecture, so in practice the cost paths see `crypto() == None`;
/// this model documents the degenerate costs and anchors the
/// `compare-schemes` report's baseline row.
pub struct Unprotected;

impl ProtectionScheme for Unprotected {
    fn id(&self) -> SchemeId {
        SchemeId::None
    }
    fn supports(&self, _class: EngineClass) -> bool {
        false
    }
    fn block_bytes(&self) -> u64 {
        16
    }
    fn cycles_per_block(&self, _class: EngineClass) -> u64 {
        0
    }
    fn energy_per_block_pj(&self, _class: EngineClass) -> f64 {
        0.0
    }
    fn area_kgates(&self, _class: EngineClass) -> f64 {
        0.0
    }
    fn default_tag_bits(&self) -> u32 {
        0
    }
}

/// The paper's Table-2 AES-GCM model — the default scheme.
///
/// All numbers come from the same [`StageSpec`]s as
/// [`AesGcmEngine`](crate::engine::AesGcmEngine), combined with the same
/// arithmetic (slower stage sets the initiation interval; stage energies
/// and areas add), so every derived quantity is bit-identical to the
/// pre-trait engine model.
///
/// [`StageSpec`]: crate::engine::StageSpec
pub struct AesGcmTable2;

impl ProtectionScheme for AesGcmTable2 {
    fn id(&self) -> SchemeId {
        SchemeId::AesGcm
    }
    fn supports(&self, _class: EngineClass) -> bool {
        true
    }
    fn block_bytes(&self) -> u64 {
        crate::engine::BLOCK_BYTES
    }
    fn cycles_per_block(&self, class: EngineClass) -> u64 {
        class
            .aes()
            .cycles_per_block
            .max(class.gf_mult().cycles_per_block)
    }
    fn energy_per_block_pj(&self, class: EngineClass) -> f64 {
        class.aes().energy_pj + class.gf_mult().energy_pj
    }
    fn area_kgates(&self, class: EngineClass) -> f64 {
        class.aes().area_kgates + class.gf_mult().area_kgates
    }
    fn default_tag_bits(&self) -> u32 {
        64
    }
}

/// Seculator-style low-latency secure pipeline (PAPERS.md).
///
/// Models a secure-NPU datapath where version lookahead and counter
/// prefetch overlap MAC generation with transfer: the fast design point
/// sustains one 16-byte block per cycle like the pipelined AES-GCM
/// engine but at well under half its area, and a 4-cycle round-parallel
/// point sits between the paper's Pipelined and Parallel corners. The
/// scheme truncates tags to 32 bits. A bit-serial realisation would
/// forfeit exactly the latency-hiding that defines the scheme, so
/// `Serial` is unsupported.
pub struct SeculatorPipeline;

impl ProtectionScheme for SeculatorPipeline {
    fn id(&self) -> SchemeId {
        SchemeId::Seculator
    }
    fn supports(&self, class: EngineClass) -> bool {
        matches!(class, EngineClass::Pipelined | EngineClass::Parallel)
    }
    fn block_bytes(&self) -> u64 {
        16
    }
    fn cycles_per_block(&self, class: EngineClass) -> u64 {
        match class {
            EngineClass::Pipelined => 1,
            EngineClass::Parallel => 4,
            EngineClass::Serial => u64::MAX,
        }
    }
    fn energy_per_block_pj(&self, class: EngineClass) -> f64 {
        match class {
            EngineClass::Pipelined => 96.4,
            EngineClass::Parallel => 121.7,
            EngineClass::Serial => f64::INFINITY,
        }
    }
    fn area_kgates(&self, class: EngineClass) -> f64 {
        match class {
            EngineClass::Pipelined => 34.2,
            EngineClass::Parallel => 11.8,
            EngineClass::Serial => f64::INFINITY,
        }
    }
    fn default_tag_bits(&self) -> u32 {
        32
    }
}

/// SeDA-style HW/SW-synergy bulk protection (PAPERS.md).
///
/// Protection is amortised over 64-byte authentication blocks with a
/// software-visible handshake: the per-block initiation interval is
/// long (the handshake dominates), but each block carries four times
/// the payload, so streaming traffic pays a competitive per-byte cost
/// with very little dedicated hardware. A fully-pipelined core cannot
/// be fed through the handshake, so `Pipelined` is unsupported.
pub struct SedaSynergy;

impl ProtectionScheme for SedaSynergy {
    fn id(&self) -> SchemeId {
        SchemeId::Seda
    }
    fn supports(&self, class: EngineClass) -> bool {
        matches!(class, EngineClass::Parallel | EngineClass::Serial)
    }
    fn block_bytes(&self) -> u64 {
        64
    }
    fn cycles_per_block(&self, class: EngineClass) -> u64 {
        match class {
            EngineClass::Pipelined => u64::MAX,
            EngineClass::Parallel => 48,
            EngineClass::Serial => 1280,
        }
    }
    fn energy_per_block_pj(&self, class: EngineClass) -> f64 {
        match class {
            EngineClass::Pipelined => f64::INFINITY,
            EngineClass::Parallel => 838.0,
            EngineClass::Serial => 3158.4,
        }
    }
    fn area_kgates(&self, class: EngineClass) -> f64 {
        match class {
            EngineClass::Pipelined => f64::INFINITY,
            EngineClass::Parallel => 10.4,
            EngineClass::Serial => 3.4,
        }
    }
    fn default_tag_bits(&self) -> u32 {
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AesGcmEngine, CryptoConfig};

    #[test]
    fn names_round_trip() {
        for id in SchemeId::ALL {
            assert_eq!(SchemeId::from_name(id.name()), Some(id));
            assert_eq!(id.model().id(), id);
        }
        assert_eq!(SchemeId::from_name("rot13"), None);
    }

    #[test]
    fn aes_gcm_model_matches_engine_bit_for_bit() {
        let m = SchemeId::AesGcm.model();
        for class in EngineClass::ALL {
            let e: AesGcmEngine = class.engine();
            assert_eq!(m.cycles_per_block(class), e.cycles_per_block());
            assert_eq!(
                m.bytes_per_cycle(class).to_bits(),
                e.bytes_per_cycle().to_bits()
            );
            assert_eq!(
                m.energy_per_bit_pj(class).to_bits(),
                e.energy_per_bit_pj().to_bits()
            );
            assert_eq!(m.area_kgates(class).to_bits(), e.area_kgates().to_bits());
            for bytes in [0, 1, 15, 16, 17, 4096, 4097] {
                assert_eq!(m.cycles_for_bytes(class, bytes), e.cycles_for_bytes(bytes));
            }
        }
    }

    #[test]
    fn support_matrix() {
        use EngineClass::*;
        let cases = [
            (SchemeId::None, [false, false, false]),
            (SchemeId::AesGcm, [true, true, true]),
            (SchemeId::Seculator, [true, true, false]),
            (SchemeId::Seda, [false, true, true]),
        ];
        for (id, expect) in cases {
            for (class, ok) in [Pipelined, Parallel, Serial].into_iter().zip(expect) {
                assert_eq!(id.model().supports(class), ok, "{id} on {class}");
            }
        }
    }

    #[test]
    fn unprotected_is_free_and_unthrottled() {
        let m = SchemeId::None.model();
        for class in EngineClass::ALL {
            assert_eq!(m.cycles_for_bytes(class, 1 << 20), 0);
            assert!(m.bytes_per_cycle(class).is_infinite());
            assert_eq!(m.energy_per_bit_pj(class), 0.0);
            assert_eq!(m.area_kgates(class), 0.0);
        }
        assert_eq!(m.default_tag_bits(), 0);
    }

    #[test]
    fn seculator_undercuts_pipelined_aes_gcm_area() {
        let secu = SchemeId::Seculator.model();
        let aes = SchemeId::AesGcm.model();
        let class = EngineClass::Pipelined;
        assert_eq!(
            secu.cycles_per_block(class),
            aes.cycles_per_block(class),
            "same throughput"
        );
        assert!(secu.area_kgates(class) < 0.5 * aes.area_kgates(class));
        assert!(secu.energy_per_bit_pj(class) < aes.energy_per_bit_pj(class));
    }

    #[test]
    fn seda_amortises_bulk_blocks() {
        let seda = SchemeId::Seda.model();
        let aes = SchemeId::AesGcm.model();
        let class = EngineClass::Serial;
        // Per-block cost is much higher, but per-byte cost is lower:
        // the 64-byte block amortises the handshake.
        assert!(seda.energy_per_block_pj(class) > aes.energy_per_block_pj(class));
        assert!(seda.energy_per_bit_pj(class) < aes.energy_per_bit_pj(class));
        assert!(seda.bytes_per_cycle(class) > aes.bytes_per_cycle(class));
    }

    #[test]
    fn config_with_scheme_adopts_granularity_rules() {
        let cfg = CryptoConfig::new(EngineClass::Parallel, 3).with_scheme(SchemeId::Seculator);
        assert_eq!(cfg.scheme, SchemeId::Seculator);
        assert_eq!(cfg.tag_bits, 32);
        // Default construction stays on the paper's scheme and tag.
        let d = CryptoConfig::new(EngineClass::Parallel, 3);
        assert_eq!(d.scheme, SchemeId::AesGcm);
        assert_eq!(d.tag_bits, 64);
    }
}
