//! AES-GCM hardware engine cost models (paper Table 2, §3.1, §4.1).
//!
//! An AES-GCM engine is an AES core plus a Galois-field multiplier
//! (paper Fig. 2). Each stage is characterised by its initiation interval
//! (cycles per 128-bit block), area (kGates, normalised to 40 nm) and
//! energy per block (pJ). The engine's throughput is set by the slower
//! stage: the stages are pipelined with respect to each other, so a block
//! leaves every `max(aes.cycles, gf.cycles)` cycles.

use std::fmt;

use crate::scheme::{ProtectionScheme, SchemeId};

/// Bytes in one AES-GCM block (128 bits).
pub const BLOCK_BYTES: u64 = 16;

/// Cost specification for one pipeline stage (AES core or GF multiplier).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSpec {
    /// Initiation interval: cycles between consecutive 128-bit blocks.
    pub cycles_per_block: u64,
    /// Area in kGates (normalised to 40 nm, paper §5.2).
    pub area_kgates: f64,
    /// Energy per 128-bit block in pJ.
    pub energy_pj: f64,
}

/// The three engine design points evaluated in the paper (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineClass {
    /// Fully-pipelined AES + single-cycle GF multiplier: one block per
    /// cycle, large area (Banerjee-2017 pipeline / Mathew-2011 class).
    Pipelined,
    /// Round-parallel AES (11 cycles/block) + 8-cycle GF multiplier
    /// (Banerjee-2017/2019 parallel class) — the paper's default.
    Parallel,
    /// Bit/byte-serial AES (336 cycles/block) + 128-cycle GF multiplier:
    /// minimal area, minimal throughput.
    Serial,
}

impl EngineClass {
    /// All three classes.
    pub const ALL: [EngineClass; 3] = [
        EngineClass::Pipelined,
        EngineClass::Parallel,
        EngineClass::Serial,
    ];

    /// Table 2 AES-stage specification.
    pub fn aes(self) -> StageSpec {
        match self {
            EngineClass::Pipelined => StageSpec {
                cycles_per_block: 1,
                area_kgates: 78.8,
                energy_pj: 165.1,
            },
            EngineClass::Parallel => StageSpec {
                cycles_per_block: 11,
                area_kgates: 9.2,
                energy_pj: 194.6,
            },
            EngineClass::Serial => StageSpec {
                cycles_per_block: 336,
                area_kgates: 3.0,
                energy_pj: 768.0,
            },
        }
    }

    /// Table 2 GF-multiplier-stage specification.
    pub fn gf_mult(self) -> StageSpec {
        match self {
            EngineClass::Pipelined => StageSpec {
                cycles_per_block: 1,
                area_kgates: 60.1,
                energy_pj: 57.7,
            },
            EngineClass::Parallel => StageSpec {
                cycles_per_block: 8,
                area_kgates: 9.7,
                energy_pj: 82.4,
            },
            EngineClass::Serial => StageSpec {
                cycles_per_block: 128,
                area_kgates: 3.3,
                energy_pj: 345.6,
            },
        }
    }

    /// Construct the full engine model.
    pub fn engine(self) -> AesGcmEngine {
        AesGcmEngine::new(self.name(), self.aes(), self.gf_mult())
    }

    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            EngineClass::Pipelined => "Pipelined",
            EngineClass::Parallel => "Parallel",
            EngineClass::Serial => "Serial",
        }
    }
}

impl fmt::Display for EngineClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Cost model of one AES-GCM engine: AES core + GF multiplier.
#[derive(Debug, Clone, PartialEq)]
pub struct AesGcmEngine {
    name: String,
    aes: StageSpec,
    gf: StageSpec,
}

impl AesGcmEngine {
    /// Build an engine from explicit stage specs.
    pub fn new(name: impl Into<String>, aes: StageSpec, gf: StageSpec) -> Self {
        AesGcmEngine {
            name: name.into(),
            aes,
            gf,
        }
    }

    /// Engine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// AES stage specification.
    pub fn aes(&self) -> StageSpec {
        self.aes
    }

    /// GF multiplier stage specification.
    pub fn gf_mult(&self) -> StageSpec {
        self.gf
    }

    /// Cycles between consecutive blocks: the slower of the two pipelined
    /// stages.
    pub fn cycles_per_block(&self) -> u64 {
        self.aes.cycles_per_block.max(self.gf.cycles_per_block)
    }

    /// Sustained throughput in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        BLOCK_BYTES as f64 / self.cycles_per_block() as f64
    }

    /// Energy to encrypt/decrypt *and* authenticate one 128-bit block.
    pub fn energy_per_block_pj(&self) -> f64 {
        self.aes.energy_pj + self.gf.energy_pj
    }

    /// Energy per bit of protected traffic.
    pub fn energy_per_bit_pj(&self) -> f64 {
        self.energy_per_block_pj() / (BLOCK_BYTES as f64 * 8.0)
    }

    /// Total area in kGates.
    pub fn area_kgates(&self) -> f64 {
        self.aes.area_kgates + self.gf.area_kgates
    }

    /// Cycles to process `bytes` of traffic (partial blocks round up —
    /// GCM always processes whole 128-bit blocks).
    pub fn cycles_for_bytes(&self, bytes: u64) -> u64 {
        bytes.div_ceil(BLOCK_BYTES) * self.cycles_per_block()
    }
}

/// A cryptographic-engine configuration attached to an accelerator:
/// `count` identical engines per datatype stream, shared equally.
///
/// The paper's base secure configuration is one parallel engine per
/// datatype (§5.1); Fig. 13 sweeps `count` and [`EngineClass`].
#[derive(Debug, Clone, PartialEq)]
pub struct CryptoConfig {
    /// Engine design point.
    pub class: EngineClass,
    /// Total number of engine instances on the accelerator.
    pub count: usize,
    /// Truncated authentication-tag size stored per AuthBlock, in bits.
    pub tag_bits: u32,
    /// Protection-scheme backend pricing the engines. Defaults to the
    /// paper's AES-GCM Table-2 model; all derived cost quantities
    /// delegate to this backend's [`ProtectionScheme`] implementation.
    pub scheme: SchemeId,
}

impl CryptoConfig {
    /// `count` engines of the given class with the default 64-bit tag,
    /// priced by the paper's AES-GCM Table-2 scheme.
    pub fn new(class: EngineClass, count: usize) -> Self {
        CryptoConfig {
            class,
            count,
            tag_bits: 64,
            scheme: SchemeId::AesGcm,
        }
    }

    /// Re-price this configuration under a different protection scheme,
    /// adopting the scheme's default authentication-tag width.
    ///
    /// Callers are expected to have checked
    /// [`ProtectionScheme::supports`] for the engine class first; an
    /// unsupported combination yields infinite costs rather than a
    /// panic.
    pub fn with_scheme(mut self, scheme: SchemeId) -> Self {
        self.scheme = scheme;
        self.tag_bits = scheme.model().default_tag_bits();
        self
    }

    /// The cost model behind [`CryptoConfig::scheme`].
    pub fn model(&self) -> &'static dyn ProtectionScheme {
        self.scheme.model()
    }

    /// Aggregate engine throughput in bytes per cycle.
    pub fn total_bytes_per_cycle(&self) -> f64 {
        self.model().bytes_per_cycle(self.class) * self.count as f64
    }

    /// Per-datatype-stream throughput, when the engines are statically
    /// partitioned across the three streams (weight/ifmap/ofmap).
    ///
    /// The paper's base design attaches exactly one engine per datatype
    /// (§3.1, §5.1) — that is the `count == 3` case, where each stream
    /// is limited to its own engine. Larger pools (e.g. the 30 serial
    /// engines of §5.2, which match one parallel engine's throughput)
    /// are assigned flexibly, so they behave as a shared pool and
    /// `None` is returned.
    pub fn per_stream_bytes_per_cycle(&self) -> Option<f64> {
        if self.count == 3 {
            Some(self.model().bytes_per_cycle(self.class))
        } else {
            None
        }
    }

    /// Aggregate area in kGates.
    pub fn total_area_kgates(&self) -> f64 {
        self.model().area_kgates(self.class) * self.count as f64
    }

    /// Energy per bit of protected traffic (independent of `count`).
    pub fn energy_per_bit_pj(&self) -> f64 {
        self.model().energy_per_bit_pj(self.class)
    }

    /// Short label like `"Parallel x5"` used by the Fig. 13 harness.
    /// Non-default schemes are suffixed (`"Parallel x3 [seculator]"`)
    /// so report rows never alias across schemes; the default AES-GCM
    /// label is unchanged from the pre-trait model, keeping committed
    /// goldens stable.
    pub fn label(&self) -> String {
        match self.scheme {
            SchemeId::AesGcm => format!("{} x{}", self.class, self.count),
            s => format!("{} x{} [{}]", self.class, self.count, s.name()),
        }
    }
}

impl fmt::Display for CryptoConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_throughputs() {
        assert_eq!(EngineClass::Pipelined.engine().cycles_per_block(), 1);
        assert_eq!(EngineClass::Parallel.engine().cycles_per_block(), 11);
        assert_eq!(EngineClass::Serial.engine().cycles_per_block(), 336);
    }

    #[test]
    fn table2_areas() {
        // Paper §3.1: one pipelined AES-GCM engine per datatype
        // (3 engines) is 416.7 kGates.
        let total = 3.0 * EngineClass::Pipelined.engine().area_kgates();
        assert!((total - 416.7).abs() < 0.1, "total = {total}");
        let p = EngineClass::Parallel.engine().area_kgates();
        assert!((p - 18.9).abs() < 1e-9);
    }

    #[test]
    fn area_orders_match_throughput_orders() {
        let a: Vec<f64> = EngineClass::ALL
            .iter()
            .map(|c| c.engine().area_kgates())
            .collect();
        let t: Vec<f64> = EngineClass::ALL
            .iter()
            .map(|c| c.engine().bytes_per_cycle())
            .collect();
        assert!(a[0] > a[1] && a[1] > a[2]);
        assert!(t[0] > t[1] && t[1] > t[2]);
    }

    #[test]
    fn cycles_round_up_partial_blocks() {
        let e = EngineClass::Parallel.engine();
        assert_eq!(e.cycles_for_bytes(0), 0);
        assert_eq!(e.cycles_for_bytes(1), 11);
        assert_eq!(e.cycles_for_bytes(16), 11);
        assert_eq!(e.cycles_for_bytes(17), 22);
    }

    #[test]
    fn config_aggregates() {
        let cfg = CryptoConfig::new(EngineClass::Serial, 30);
        // Paper §5.2: 30 serial engines vs 1 parallel engine have similar
        // throughput (~10x area difference).
        let parallel = CryptoConfig::new(EngineClass::Parallel, 1);
        let ratio = cfg.total_bytes_per_cycle() / parallel.total_bytes_per_cycle();
        assert!(ratio > 0.9 && ratio < 1.1, "ratio = {ratio}");
        let area_ratio = cfg.total_area_kgates() / parallel.total_area_kgates();
        assert!(area_ratio > 9.0 && area_ratio < 11.0, "area = {area_ratio}");
        assert_eq!(cfg.label(), "Serial x30");
    }

    #[test]
    fn energy_per_bit_is_positive() {
        for c in EngineClass::ALL {
            assert!(c.engine().energy_per_bit_pj() > 0.0);
        }
        // Serial designs burn more energy per block in this table.
        assert!(
            EngineClass::Serial.engine().energy_per_block_pj()
                > EngineClass::Pipelined.engine().energy_per_block_pj()
        );
    }
}
