//! Encryption-seed (counter) management.
//!
//! The engine's encryption seed is `counter ‖ address ‖ IV` (paper
//! Fig. 2). The counter is a version number bumped every time the
//! accelerator rewrites a block; tree-less designs derive it on-chip
//! from the deterministic execution schedule instead of storing it in
//! DRAM (paper §2.2, [18, 19, 27]). This module implements that
//! derivation and enforces the one rule GCM security stands on:
//! **a (key, seed) pair is never reused**.
//!
//! [`SeedGenerator`] produces 96-bit IVs from
//! `(tensor id, block index, version)`; [`CounterTracker`] derives the
//! version number per block from the write schedule, exactly the
//! knowledge a tree-less accelerator has.

use std::collections::HashMap;

/// A 96-bit GCM IV derived from the seed components.
pub type Iv = [u8; 12];

/// Derives unique IVs from structured seed components.
///
/// Layout: 4 bytes tensor id ‖ 4 bytes block index ‖ 4 bytes version —
/// distinct components always give distinct IVs, which the unit tests
/// pin down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeedGenerator;

impl SeedGenerator {
    /// The IV for (tensor, block, version).
    pub fn iv(tensor: u32, block: u32, version: u32) -> Iv {
        let mut iv = [0u8; 12];
        iv[..4].copy_from_slice(&tensor.to_be_bytes());
        iv[4..8].copy_from_slice(&block.to_be_bytes());
        iv[8..].copy_from_slice(&version.to_be_bytes());
        iv
    }
}

/// On-chip version tracking for the blocks of one tensor.
///
/// A tree-less accelerator knows, from the loopnest, how many times
/// each block has been written; this structure reproduces that
/// bookkeeping so the functional pipeline can be driven with correct,
/// never-reused seeds — and so tests can prove that replayed (stale)
/// versions fail authentication.
#[derive(Debug, Clone, Default)]
pub struct CounterTracker {
    versions: HashMap<(u32, u32), u32>,
}

impl CounterTracker {
    /// Fresh tracker: every block starts at version 0 (provisioning).
    pub fn new() -> Self {
        CounterTracker::default()
    }

    /// Current version of a block (0 if never rewritten).
    pub fn version(&self, tensor: u32, block: u32) -> u32 {
        self.versions.get(&(tensor, block)).copied().unwrap_or(0)
    }

    /// The IV to use for *reading* the block right now.
    pub fn read_iv(&self, tensor: u32, block: u32) -> Iv {
        SeedGenerator::iv(tensor, block, self.version(tensor, block))
    }

    /// Bump the version for a rewrite and return the IV to encrypt
    /// the new contents with.
    pub fn write_iv(&mut self, tensor: u32, block: u32) -> Iv {
        let v = self.versions.entry((tensor, block)).or_insert(0);
        *v += 1;
        SeedGenerator::iv(tensor, block, *v)
    }

    /// Number of blocks that have been rewritten at least once.
    pub fn rewritten_blocks(&self) -> usize {
        self.versions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcm::AesGcm;
    use std::collections::HashSet;

    #[test]
    fn ivs_are_unique_across_components() {
        let mut seen = HashSet::new();
        for tensor in 0..8u32 {
            for block in 0..8u32 {
                for version in 0..8u32 {
                    assert!(seen.insert(SeedGenerator::iv(tensor, block, version)));
                }
            }
        }
        assert_eq!(seen.len(), 512);
    }

    #[test]
    fn version_advances_only_on_writes() {
        let mut t = CounterTracker::new();
        assert_eq!(t.version(1, 5), 0);
        let iv_r0 = t.read_iv(1, 5);
        let iv_w1 = t.write_iv(1, 5);
        assert_ne!(iv_r0, iv_w1);
        assert_eq!(t.version(1, 5), 1);
        assert_eq!(t.read_iv(1, 5), iv_w1, "reads use the last written version");
        let iv_w2 = t.write_iv(1, 5);
        assert_ne!(iv_w1, iv_w2);
        assert_eq!(t.rewritten_blocks(), 1);
    }

    #[test]
    fn stale_version_replay_fails_authentication() {
        // A partial-sum block is written twice; an attacker replaying
        // the first ciphertext+tag is caught because the accelerator
        // derives version 2 for the read.
        let gcm = AesGcm::new(&[3u8; 16]);
        let mut t = CounterTracker::new();
        let (tensor, block) = (7, 42);
        let addr = b"block-42";

        let iv1 = t.write_iv(tensor, block);
        let (ct1, tag1) = gcm.encrypt(&iv1, b"partial sums v1", addr);
        let iv2 = t.write_iv(tensor, block);
        let (ct2, tag2) = gcm.encrypt(&iv2, b"partial sums v2", addr);

        let read_iv = t.read_iv(tensor, block);
        // Fresh data verifies...
        assert_eq!(
            gcm.decrypt(&read_iv, &ct2, addr, &tag2).unwrap(),
            b"partial sums v2"
        );
        // ...replayed stale data does not.
        assert!(gcm.decrypt(&read_iv, &ct1, addr, &tag1).is_err());
    }

    #[test]
    fn distinct_tensors_never_collide() {
        let mut t = CounterTracker::new();
        let a = t.write_iv(1, 0);
        let b = t.write_iv(2, 0);
        assert_ne!(a, b);
    }
}
