//! AES-128 block cipher (FIPS-197), implemented from first principles.
//!
//! The S-box is *computed* at compile time from the GF(2⁸) inverse and the
//! affine transform rather than transcribed, eliminating table-typo risk;
//! the known-answer test below pins the FIPS-197 Appendix C vector.

/// Multiply two elements of GF(2⁸) modulo the AES polynomial x⁸+x⁴+x³+x+1.
const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
        i += 1;
    }
    p
}

/// Multiplicative inverse in GF(2⁸) (0 maps to 0), via a^254.
const fn gf_inv(a: u8) -> u8 {
    // a^254 = a^(2+4+8+16+32+64+128)
    let a2 = gf_mul(a, a);
    let a4 = gf_mul(a2, a2);
    let a8 = gf_mul(a4, a4);
    let a16 = gf_mul(a8, a8);
    let a32 = gf_mul(a16, a16);
    let a64 = gf_mul(a32, a32);
    let a128 = gf_mul(a64, a64);
    gf_mul(
        a128,
        gf_mul(a64, gf_mul(a32, gf_mul(a16, gf_mul(a8, gf_mul(a4, a2))))),
    )
}

const fn affine(x: u8) -> u8 {
    x ^ x.rotate_left(1) ^ x.rotate_left(2) ^ x.rotate_left(3) ^ x.rotate_left(4) ^ 0x63
}

const fn build_sbox() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        t[i] = affine(gf_inv(i as u8));
        i += 1;
    }
    t
}

/// The AES S-box, derived at compile time.
pub const SBOX: [u8; 256] = build_sbox();

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Generic FIPS-197 key expansion: `NK` key words, `ROUNDS` rounds.
fn expand_key<const NK: usize, const ROUNDS: usize>(key: &[u8]) -> Vec<[u8; 16]> {
    debug_assert_eq!(key.len(), 4 * NK);
    let words = 4 * (ROUNDS + 1);
    let mut w = vec![[0u8; 4]; words];
    for (i, word) in w.iter_mut().take(NK).enumerate() {
        word.copy_from_slice(&key[4 * i..4 * i + 4]);
    }
    for i in NK..words {
        let mut t = w[i - 1];
        if i % NK == 0 {
            t.rotate_left(1);
            for b in &mut t {
                *b = SBOX[*b as usize];
            }
            t[0] ^= RCON[i / NK - 1];
        } else if NK > 6 && i % NK == 4 {
            for b in &mut t {
                *b = SBOX[*b as usize];
            }
        }
        for j in 0..4 {
            w[i][j] = w[i - NK][j] ^ t[j];
        }
    }
    (0..=ROUNDS)
        .map(|r| {
            let mut rk = [0u8; 16];
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
            rk
        })
        .collect()
}

fn encrypt_with(round_keys: &[[u8; 16]], block: &mut [u8; 16]) {
    let rounds = round_keys.len() - 1;
    add_round_key(block, &round_keys[0]);
    for rk in &round_keys[1..rounds] {
        sub_bytes(block);
        shift_rows(block);
        mix_columns(block);
        add_round_key(block, rk);
    }
    sub_bytes(block);
    shift_rows(block);
    add_round_key(block, &round_keys[rounds]);
}

/// AES-128 with an expanded key schedule.
///
/// Only encryption is implemented: GCM (and CTR mode generally) never
/// invokes the inverse cipher.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: Vec<[u8; 16]>,
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak key material through Debug output.
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl Aes128 {
    /// Expand a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Self {
        Aes128 {
            round_keys: expand_key::<4, 10>(key),
        }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        encrypt_with(&self.round_keys, block);
    }

    /// Encrypt and return a copy.
    pub fn encrypt(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut b = *block;
        self.encrypt_block(&mut b);
        b
    }
}

/// AES-256 (14 rounds). Some TEE deployments mandate 256-bit keys; the
/// GCM layer accepts either cipher.
#[derive(Clone)]
pub struct Aes256 {
    round_keys: Vec<[u8; 16]>,
}

impl std::fmt::Debug for Aes256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aes256").finish_non_exhaustive()
    }
}

impl Aes256 {
    /// Expand a 256-bit key.
    pub fn new(key: &[u8; 32]) -> Self {
        Aes256 {
            round_keys: expand_key::<8, 14>(key),
        }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        encrypt_with(&self.round_keys, block);
    }

    /// Encrypt and return a copy.
    pub fn encrypt(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut b = *block;
        self.encrypt_block(&mut b);
        b
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// State is column-major: byte `r + 4c` is row `r`, column `c`.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_spot_values() {
        // Well-known fixed points of the published table.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &v in SBOX.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn fips197_appendix_c_vector() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expect: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(Aes128::new(&key).encrypt(&pt), expect);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // The worked example from FIPS-197 Appendix B.
        let key = *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c";
        let pt = *b"\x32\x43\xf6\xa8\x88\x5a\x30\x8d\x31\x31\x98\xa2\xe0\x37\x07\x34";
        let expect = *b"\x39\x25\x84\x1d\x02\xdc\x09\xfb\xdc\x11\x85\x97\x19\x6a\x0b\x32";
        assert_eq!(Aes128::new(&key).encrypt(&pt), expect);
    }

    #[test]
    fn fips197_appendix_c3_aes256_vector() {
        let key: [u8; 32] = std::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expect: [u8; 16] = [
            0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
            0x60, 0x89,
        ];
        assert_eq!(Aes256::new(&key).encrypt(&pt), expect);
    }

    #[test]
    fn aes256_differs_from_aes128() {
        let k128 = [0u8; 16];
        let k256 = [0u8; 32];
        let pt = [0u8; 16];
        assert_ne!(
            Aes128::new(&k128).encrypt(&pt),
            Aes256::new(&k256).encrypt(&pt)
        );
    }

    #[test]
    fn gf_mul_matches_known_products() {
        // {57} · {83} = {c1} from the FIPS-197 spec example.
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        // {57} · {13} = {fe}.
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
    }

    #[test]
    fn gf_inv_is_involutive() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a = {a:#x}");
        }
        assert_eq!(gf_inv(0), 0);
    }

    #[test]
    fn debug_does_not_leak_keys() {
        let aes = Aes128::new(&[0x42; 16]);
        let dbg = format!("{aes:?}");
        assert!(!dbg.contains("42"));
    }
}
