//! Cycle-approximate simulator for cryptographic engines.
//!
//! The scheduler's analytical model (paper §4.1) assumes each AES-GCM
//! engine sustains one 128-bit block per initiation interval and that the
//! effective off-chip bandwidth is `min(DRAM, engines)`. This module
//! replays an actual request trace through a pipeline model — per-engine
//! occupancy, round-robin arbitration across datatype streams — so tests
//! can confirm the closed-form bandwidth is the correct steady-state
//! limit and quantify the (bounded) start-up error.

use crate::engine::{AesGcmEngine, BLOCK_BYTES};

/// A burst of protected off-chip traffic belonging to one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Stream (e.g. datatype) index; used for round-robin arbitration.
    pub stream: usize,
    /// Cycle at which the data is available to the engine.
    pub arrival: u64,
    /// Number of bytes to encrypt/decrypt + authenticate.
    pub bytes: u64,
}

/// Result of replaying a trace through [`EngineSim`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Cycle at which the last block drained.
    pub finish_cycle: u64,
    /// Total blocks processed.
    pub blocks: u64,
    /// Achieved throughput in bytes/cycle (measured from cycle 0).
    pub bytes_per_cycle: f64,
}

/// A pool of identical AES-GCM engines fed from per-stream FIFOs with
/// round-robin arbitration.
#[derive(Debug, Clone)]
pub struct EngineSim {
    engine: AesGcmEngine,
    count: usize,
}

impl EngineSim {
    /// `count` identical engines.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn new(engine: AesGcmEngine, count: usize) -> Self {
        assert!(count > 0, "need at least one engine");
        EngineSim { engine, count }
    }

    /// Replay `requests` (any order; they are sorted by arrival) and
    /// return the drain statistics.
    pub fn run(&self, requests: &[Request]) -> SimResult {
        let ii = self.engine.cycles_per_block();
        // Expand each request into blocks, tagged by stream.
        let mut queue: Vec<(u64, usize)> = Vec::new(); // (arrival, stream)
        for r in requests {
            for _ in 0..r.bytes.div_ceil(BLOCK_BYTES) {
                queue.push((r.arrival, r.stream));
            }
        }
        // Round-robin across streams at equal arrival: sort by (arrival,
        // stream) then interleave per arrival group.
        queue.sort_by_key(|&(a, s)| (a, s));

        // Next-free cycle per engine.
        let mut free = vec![0u64; self.count];
        let mut finish = 0u64;
        let mut blocks = 0u64;
        for (arrival, _stream) in queue {
            // Earliest-available engine (round-robin falls out of always
            // picking the least-loaded engine for identical engines).
            let (idx, &start) = free
                .iter()
                .enumerate()
                .min_by_key(|&(_, &f)| f)
                .expect("count > 0");
            let begin = start.max(arrival);
            let done = begin + ii;
            free[idx] = done;
            finish = finish.max(done);
            blocks += 1;
        }
        SimResult {
            finish_cycle: finish,
            blocks,
            bytes_per_cycle: if finish == 0 {
                0.0
            } else {
                (blocks * BLOCK_BYTES) as f64 / finish as f64
            },
        }
    }

    /// Closed-form steady-state throughput the scheduler assumes.
    pub fn analytical_bytes_per_cycle(&self) -> f64 {
        self.engine.bytes_per_cycle() * self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineClass;

    fn saturating_trace(blocks: u64) -> Vec<Request> {
        vec![Request {
            stream: 0,
            arrival: 0,
            bytes: blocks * BLOCK_BYTES,
        }]
    }

    #[test]
    fn single_engine_matches_closed_form() {
        for class in EngineClass::ALL {
            let sim = EngineSim::new(class.engine(), 1);
            let res = sim.run(&saturating_trace(1000));
            let rel = res.bytes_per_cycle / sim.analytical_bytes_per_cycle();
            assert!(
                (rel - 1.0).abs() < 1e-6,
                "{class}: measured {} vs analytical {}",
                res.bytes_per_cycle,
                sim.analytical_bytes_per_cycle()
            );
        }
    }

    #[test]
    fn engine_pool_scales_linearly() {
        let one = EngineSim::new(EngineClass::Serial.engine(), 1)
            .run(&saturating_trace(300))
            .finish_cycle;
        let thirty = EngineSim::new(EngineClass::Serial.engine(), 30)
            .run(&saturating_trace(300))
            .finish_cycle;
        let speedup = one as f64 / thirty as f64;
        assert!(
            (speedup - 30.0).abs() < 0.5,
            "30 engines should give ~30x: {speedup}"
        );
    }

    #[test]
    fn thirty_serial_matches_one_parallel() {
        // Paper §5.2: 30x serial ≈ 1x parallel in throughput.
        let serial = EngineSim::new(EngineClass::Serial.engine(), 30).run(&saturating_trace(5000));
        let parallel =
            EngineSim::new(EngineClass::Parallel.engine(), 1).run(&saturating_trace(5000));
        let ratio = serial.bytes_per_cycle / parallel.bytes_per_cycle;
        assert!(ratio > 0.9 && ratio < 1.12, "ratio = {ratio}");
    }

    #[test]
    fn arrival_gaps_stall_the_engine() {
        let sim = EngineSim::new(EngineClass::Parallel.engine(), 1);
        let res = sim.run(&[
            Request {
                stream: 0,
                arrival: 0,
                bytes: 16,
            },
            Request {
                stream: 0,
                arrival: 1000,
                bytes: 16,
            },
        ]);
        assert_eq!(res.finish_cycle, 1011);
    }

    #[test]
    fn multiple_streams_share_fairly() {
        let sim = EngineSim::new(EngineClass::Parallel.engine(), 3);
        let reqs: Vec<Request> = (0..3)
            .map(|s| Request {
                stream: s,
                arrival: 0,
                bytes: 100 * BLOCK_BYTES,
            })
            .collect();
        let res = sim.run(&reqs);
        // 300 blocks on 3 engines at II=11: 100 * 11 cycles.
        assert_eq!(res.finish_cycle, 1100);
    }

    #[test]
    fn empty_trace() {
        let sim = EngineSim::new(EngineClass::Pipelined.engine(), 2);
        let res = sim.run(&[]);
        assert_eq!(res.blocks, 0);
        assert_eq!(res.bytes_per_cycle, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one engine")]
    fn zero_engines_panics() {
        let _ = EngineSim::new(EngineClass::Pipelined.engine(), 0);
    }
}
