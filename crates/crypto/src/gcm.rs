//! AES-128-GCM authenticated encryption (NIST SP 800-38D).
//!
//! This is the protocol the modelled cryptographic engine implements
//! (paper Fig. 2): the AES engine produces a one-time pad from the
//! encryption seed (counter ‖ address ‖ IV), the pad is XOR-ed with the
//! data, and the Galois-field multiplier digests the ciphertext into a
//! hash (tag) stored off-chip next to the data.

use std::fmt;

use crate::aes::{Aes128, Aes256};
use crate::ghash::Ghash;

/// A 128-bit authentication tag.
///
/// SecureLoop's traffic model stores a truncated 64-bit tag per
/// authentication block (see `secureloop-authblock`); truncation of GCM
/// tags is standard (SP 800-38D §5.2.1.2) and [`Tag::truncated`] exposes
/// it.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Tag(pub [u8; 16]);

impl Tag {
    /// The leading `n` bytes of the tag (`n ≤ 16`).
    ///
    /// # Panics
    ///
    /// Panics if `n > 16`.
    pub fn truncated(&self, n: usize) -> &[u8] {
        &self.0[..n]
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tag(")?;
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

/// Error returned when authentication fails during decryption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcmError;

impl fmt::Display for GcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("authentication tag mismatch")
    }
}

impl std::error::Error for GcmError {}

/// The block cipher under GCM: AES-128 or AES-256.
#[derive(Debug, Clone)]
enum Cipher {
    Aes128(Aes128),
    Aes256(Aes256),
}

impl Cipher {
    fn encrypt(&self, block: &[u8; 16]) -> [u8; 16] {
        match self {
            Cipher::Aes128(a) => a.encrypt(block),
            Cipher::Aes256(a) => a.encrypt(block),
        }
    }
}

/// AES-GCM instance bound to one key (128- or 256-bit).
#[derive(Debug, Clone)]
pub struct AesGcm {
    cipher: Cipher,
    h: [u8; 16],
}

impl AesGcm {
    /// Derive the GCM state (hash subkey `H = E_K(0)`) from a 128-bit
    /// key.
    pub fn new(key: &[u8; 16]) -> Self {
        let cipher = Cipher::Aes128(Aes128::new(key));
        let h = cipher.encrypt(&[0u8; 16]);
        AesGcm { cipher, h }
    }

    /// AES-256-GCM.
    pub fn new_256(key: &[u8; 32]) -> Self {
        let cipher = Cipher::Aes256(Aes256::new(key));
        let h = cipher.encrypt(&[0u8; 16]);
        AesGcm { cipher, h }
    }

    fn j0(&self, iv: &[u8; 12]) -> [u8; 16] {
        let mut j0 = [0u8; 16];
        j0[..12].copy_from_slice(iv);
        j0[15] = 1;
        j0
    }

    /// Pre-counter block for an arbitrary-length IV (SP 800-38D §7.1):
    /// the 96-bit case appends `0^31 1`; otherwise
    /// `J0 = GHASH(H; IV ∥ pad ∥ len64(IV))`.
    fn j0_any(&self, iv: &[u8]) -> [u8; 16] {
        if let Ok(iv12) = <&[u8; 12]>::try_from(iv) {
            return self.j0(iv12);
        }
        let mut g = Ghash::new(self.h);
        g.update_padded(iv);
        g.update_lengths(0, iv.len() as u64 * 8);
        g.finalize()
    }

    fn ctr_xor(&self, j0: &[u8; 16], data: &[u8], out: &mut Vec<u8>) {
        let mut ctr = *j0;
        for chunk in data.chunks(16) {
            inc32(&mut ctr);
            let pad = self.cipher.encrypt(&ctr);
            for (i, &b) in chunk.iter().enumerate() {
                out.push(b ^ pad[i]);
            }
        }
    }

    fn tag(&self, j0: &[u8; 16], aad: &[u8], ct: &[u8]) -> Tag {
        let mut g = Ghash::new(self.h);
        g.update_padded(aad);
        g.update_padded(ct);
        g.update_lengths(aad.len() as u64 * 8, ct.len() as u64 * 8);
        let s = g.finalize();
        let ek0 = self.cipher.encrypt(j0);
        let mut t = [0u8; 16];
        for i in 0..16 {
            t[i] = s[i] ^ ek0[i];
        }
        Tag(t)
    }

    /// Encrypt `plaintext` with additional authenticated data `aad`.
    ///
    /// The 96-bit `iv` corresponds to the paper's encryption seed
    /// (counter ‖ data address ‖ initialization vector, Fig. 2); the
    /// caller must never reuse an IV under the same key.
    pub fn encrypt(&self, iv: &[u8; 12], plaintext: &[u8], aad: &[u8]) -> (Vec<u8>, Tag) {
        self.encrypt_iv(iv, plaintext, aad)
    }

    /// Encrypt with an arbitrary-length IV (SP 800-38D §7.1).
    pub fn encrypt_iv(&self, iv: &[u8], plaintext: &[u8], aad: &[u8]) -> (Vec<u8>, Tag) {
        let j0 = self.j0_any(iv);
        let mut ct = Vec::with_capacity(plaintext.len());
        self.ctr_xor(&j0, plaintext, &mut ct);
        let tag = self.tag(&j0, aad, &ct);
        (ct, tag)
    }

    /// Verify and decrypt.
    ///
    /// # Errors
    ///
    /// Returns [`GcmError`] if the tag does not authenticate
    /// `(iv, ciphertext, aad)`; no plaintext is released in that case.
    pub fn decrypt(
        &self,
        iv: &[u8; 12],
        ciphertext: &[u8],
        aad: &[u8],
        tag: &Tag,
    ) -> Result<Vec<u8>, GcmError> {
        self.decrypt_iv(iv, ciphertext, aad, tag)
    }

    /// Verify and decrypt with an arbitrary-length IV.
    ///
    /// # Errors
    ///
    /// Returns [`GcmError`] if the tag does not authenticate.
    pub fn decrypt_iv(
        &self,
        iv: &[u8],
        ciphertext: &[u8],
        aad: &[u8],
        tag: &Tag,
    ) -> Result<Vec<u8>, GcmError> {
        let j0 = self.j0_any(iv);
        let expect = self.tag(&j0, aad, ciphertext);
        // Constant-time comparison.
        let mut diff = 0u8;
        for i in 0..16 {
            diff |= expect.0[i] ^ tag.0[i];
        }
        if diff != 0 {
            return Err(GcmError);
        }
        let mut pt = Vec::with_capacity(ciphertext.len());
        self.ctr_xor(&j0, ciphertext, &mut pt);
        Ok(pt)
    }
}

fn inc32(block: &mut [u8; 16]) {
    let mut ctr = u32::from_be_bytes([block[12], block[13], block[14], block[15]]);
    ctr = ctr.wrapping_add(1);
    block[12..].copy_from_slice(&ctr.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn key16(s: &str) -> [u8; 16] {
        hex(s).try_into().unwrap()
    }

    fn iv12(s: &str) -> [u8; 12] {
        hex(s).try_into().unwrap()
    }

    #[test]
    fn mcgrew_viega_case_1_empty() {
        let gcm = AesGcm::new(&[0u8; 16]);
        let (ct, tag) = gcm.encrypt(&[0u8; 12], b"", b"");
        assert!(ct.is_empty());
        assert_eq!(tag.0.to_vec(), hex("58e2fccefa7e3061367f1d57a4e7455a"));
    }

    #[test]
    fn mcgrew_viega_case_2_one_block() {
        let gcm = AesGcm::new(&[0u8; 16]);
        let (ct, tag) = gcm.encrypt(&[0u8; 12], &[0u8; 16], b"");
        assert_eq!(ct, hex("0388dace60b6a392f328c2b971b2fe78"));
        assert_eq!(tag.0.to_vec(), hex("ab6e47d42cec13bdf53a67b21257bddf"));
    }

    #[test]
    fn mcgrew_viega_case_3_four_blocks() {
        let gcm = AesGcm::new(&key16("feffe9928665731c6d6a8f9467308308"));
        let pt = hex(concat!(
            "d9313225f88406e5a55909c5aff5269a",
            "86a7a9531534f7da2e4c303d8a318a72",
            "1c3c0c95956809532fcf0e2449a6b525",
            "b16aedf5aa0de657ba637b39"
        ));
        let pt_full = {
            let mut v = pt.clone();
            v.extend_from_slice(&hex("1aafd255"));
            v
        };
        let (ct, tag) = gcm.encrypt(&iv12("cafebabefacedbaddecaf888"), &pt_full, b"");
        assert_eq!(
            ct,
            hex(concat!(
                "42831ec2217774244b7221b784d0d49c",
                "e3aa212f2c02a4e035c17e2329aca12e",
                "21d514b25466931c7d8f6a5aac84aa05",
                "1ba30b396a0aac973d58e091473f5985"
            ))
        );
        assert_eq!(tag.0.to_vec(), hex("4d5c2af327cd64a62cf35abd2ba6fab4"));
    }

    #[test]
    fn mcgrew_viega_case_4_with_aad() {
        let gcm = AesGcm::new(&key16("feffe9928665731c6d6a8f9467308308"));
        let pt = hex(concat!(
            "d9313225f88406e5a55909c5aff5269a",
            "86a7a9531534f7da2e4c303d8a318a72",
            "1c3c0c95956809532fcf0e2449a6b525",
            "b16aedf5aa0de657ba637b39"
        ));
        let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let (ct, tag) = gcm.encrypt(&iv12("cafebabefacedbaddecaf888"), &pt, &aad);
        assert_eq!(
            ct,
            hex(concat!(
                "42831ec2217774244b7221b784d0d49c",
                "e3aa212f2c02a4e035c17e2329aca12e",
                "21d514b25466931c7d8f6a5aac84aa05",
                "1ba30b396a0aac973d58e091"
            ))
        );
        assert_eq!(tag.0.to_vec(), hex("5bc94fbc3221a5db94fae95ae7121a47"));
    }

    #[test]
    fn mcgrew_viega_case_14_aes256() {
        let gcm = AesGcm::new_256(&[0u8; 32]);
        let (ct, tag) = gcm.encrypt(&[0u8; 12], &[0u8; 16], b"");
        assert_eq!(ct, hex("cea7403d4d606b6e074ec5d3baf39d18"));
        assert_eq!(tag.0.to_vec(), hex("d0d1c8a799996bf0265b98b5d48ab919"));
    }

    #[test]
    fn arbitrary_iv_roundtrip() {
        let gcm = AesGcm::new(&[5u8; 16]);
        for iv_len in [8usize, 12, 16, 60] {
            let iv: Vec<u8> = (0..iv_len as u8).collect();
            let (ct, tag) = gcm.encrypt_iv(&iv, b"tile", b"aad");
            assert_eq!(gcm.decrypt_iv(&iv, &ct, b"aad", &tag).unwrap(), b"tile");
            // Wrong IV fails.
            let mut bad = iv.clone();
            bad[0] ^= 1;
            assert!(gcm.decrypt_iv(&bad, &ct, b"aad", &tag).is_err());
        }
        // The 12-byte path is identical through both APIs.
        let iv = [9u8; 12];
        let a = gcm.encrypt(&iv, b"x", b"");
        let b = gcm.encrypt_iv(&iv, b"x", b"");
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn roundtrip_and_tamper_detection() {
        let gcm = AesGcm::new(&[9u8; 16]);
        let iv = [3u8; 12];
        let msg = b"an ofmap tile heading to DRAM";
        let (mut ct, tag) = gcm.encrypt(&iv, msg, b"addr=0x1000");
        assert_eq!(
            gcm.decrypt(&iv, &ct, b"addr=0x1000", &tag).unwrap(),
            msg.to_vec()
        );
        // Ciphertext tamper.
        ct[5] ^= 0x01;
        assert_eq!(gcm.decrypt(&iv, &ct, b"addr=0x1000", &tag), Err(GcmError));
        ct[5] ^= 0x01;
        // AAD tamper (e.g. replay at a different address).
        assert_eq!(gcm.decrypt(&iv, &ct, b"addr=0x2000", &tag), Err(GcmError));
        // Tag tamper.
        let mut bad = tag;
        bad.0[0] ^= 0x80;
        assert_eq!(gcm.decrypt(&iv, &ct, b"addr=0x1000", &bad), Err(GcmError));
    }

    #[test]
    fn distinct_ivs_give_distinct_ciphertexts() {
        let gcm = AesGcm::new(&[1u8; 16]);
        let (a, _) = gcm.encrypt(&[0u8; 12], &[0u8; 32], b"");
        let (b, _) = gcm.encrypt(&[1u8; 12], &[0u8; 32], b"");
        assert_ne!(a, b);
    }

    #[test]
    fn truncated_tag_is_prefix() {
        let gcm = AesGcm::new(&[1u8; 16]);
        let (_, tag) = gcm.encrypt(&[0u8; 12], b"x", b"");
        assert_eq!(tag.truncated(8), &tag.0[..8]);
    }
}
