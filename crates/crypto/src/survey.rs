//! The published-AES-implementation survey of paper Fig. 3.
//!
//! The figure plots area (kGates, normalised across technologies) against
//! average cycles per 128-bit block for hardware AES designs published
//! 2001–2016. The paper does not tabulate the values; the numbers here
//! are taken from the cited primary sources where they are stated
//! (Banerjee-2017/2019, Satoh-2001, Hämäläinen-2006, Mathew-2011/2015)
//! and read off the figure otherwise. They reproduce the *trend* — a
//! clear area/performance trade-off spanning roughly three decades of
//! cycles-per-block — which is what the `fig03` harness regenerates.

/// One published AES implementation data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AesDesignPoint {
    /// Citation label as printed in Fig. 3.
    pub name: &'static str,
    /// Publication year.
    pub year: u16,
    /// Equivalent gate count in kGates.
    pub area_kgates: f64,
    /// Average cycles to encrypt/decrypt one 128-bit block.
    pub cycles_per_block: f64,
}

impl AesDesignPoint {
    /// Throughput in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        16.0 / self.cycles_per_block
    }
}

/// The ten design points of Fig. 3.
pub const FIG3_SURVEY: [AesDesignPoint; 10] = [
    AesDesignPoint {
        name: "Satoh-2001",
        year: 2001,
        area_kgates: 5.4,
        cycles_per_block: 54.0,
    },
    AesDesignPoint {
        name: "Hamalainen-2006-Power",
        year: 2006,
        area_kgates: 3.2,
        cycles_per_block: 48.0,
    },
    AesDesignPoint {
        name: "Hamalainen-2006-Area",
        year: 2006,
        area_kgates: 3.1,
        cycles_per_block: 160.0,
    },
    AesDesignPoint {
        name: "Hamalainen-2006-Speed",
        year: 2006,
        area_kgates: 3.9,
        cycles_per_block: 44.0,
    },
    AesDesignPoint {
        name: "Mathew-2011",
        year: 2011,
        area_kgates: 125.0,
        cycles_per_block: 1.0,
    },
    AesDesignPoint {
        name: "Mathew-2015",
        year: 2015,
        area_kgates: 1.9,
        cycles_per_block: 336.0,
    },
    AesDesignPoint {
        name: "Zhang-2016",
        year: 2016,
        area_kgates: 2.2,
        cycles_per_block: 128.0,
    },
    AesDesignPoint {
        name: "Banerjee-2017-Parallel",
        year: 2017,
        area_kgates: 9.2,
        cycles_per_block: 11.0,
    },
    AesDesignPoint {
        name: "Banerjee-2017-Pipeline",
        year: 2017,
        area_kgates: 78.8,
        cycles_per_block: 1.0,
    },
    AesDesignPoint {
        name: "Banerjee-2019",
        year: 2019,
        area_kgates: 7.8,
        cycles_per_block: 11.0,
    },
];

/// Pareto-optimal subset of the survey: points for which no other point
/// is at least as good in both area and cycles (and better in one).
pub fn pareto_front(points: &[AesDesignPoint]) -> Vec<AesDesignPoint> {
    points
        .iter()
        .filter(|p| {
            !points.iter().any(|q| {
                (q.area_kgates < p.area_kgates && q.cycles_per_block <= p.cycles_per_block)
                    || (q.area_kgates <= p.area_kgates && q.cycles_per_block < p.cycles_per_block)
            })
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_spans_three_decades_of_latency() {
        let min = FIG3_SURVEY
            .iter()
            .map(|p| p.cycles_per_block)
            .fold(f64::INFINITY, f64::min);
        let max = FIG3_SURVEY
            .iter()
            .map(|p| p.cycles_per_block)
            .fold(0.0, f64::max);
        assert_eq!(min, 1.0);
        assert!(max >= 100.0);
    }

    #[test]
    fn table2_points_appear_in_survey() {
        // The paper's parallel / pipelined engines are the Banerjee-2017
        // designs; the serial design matches Mathew-2015's cycle count.
        let find = |n: &str| FIG3_SURVEY.iter().find(|p| p.name == n).unwrap();
        assert_eq!(find("Banerjee-2017-Parallel").cycles_per_block, 11.0);
        assert_eq!(find("Banerjee-2017-Pipeline").area_kgates, 78.8);
        assert_eq!(find("Mathew-2015").cycles_per_block, 336.0);
    }

    #[test]
    fn pareto_front_is_nonempty_and_sane() {
        let front = pareto_front(&FIG3_SURVEY);
        assert!(!front.is_empty());
        // A dominated point (Hamalainen-Area dominated by Zhang-2016 in
        // both axes) must not appear.
        assert!(front.iter().all(|p| p.name != "Hamalainen-2006-Area"));
        // The fastest design is on the front.
        assert!(front
            .iter()
            .any(|p| p.name == "Banerjee-2017-Pipeline" || p.name == "Mathew-2011"));
    }

    #[test]
    fn bytes_per_cycle_inverts_cycles() {
        let p = FIG3_SURVEY[4]; // Mathew-2011, 1 cycle/block
        assert_eq!(p.bytes_per_cycle(), 16.0);
    }
}
