#![warn(missing_docs)]

//! DNN workload descriptions for SecureLoop.
//!
//! This crate defines the shapes that the SecureLoop scheduler operates on:
//!
//! * [`ConvLayer`] — a single convolutional (or fully-connected) layer
//!   described by the seven canonical loop bounds `N, M, C, P, Q, R, S`
//!   plus stride and padding (paper §2.1, Fig. 1a).
//! * [`Network`] — a chain of layers with the post-processing operations
//!   between them ([`PostOp`]), which determines how the network is split
//!   into *segments* for cross-layer fine-tuning (paper §4.3).
//! * [`zoo`] — the paper's three evaluation workloads (the
//!   convolutional front of AlexNet, ResNet-18, MobileNetV2) plus
//!   ResNet-50, VGG-16 and parametric MLP chains for wider DSE use.
//!
//! # Example
//!
//! ```
//! use secureloop_workload::{ConvLayer, Dim};
//!
//! // AlexNet conv1: 227x227x3 input, 96 11x11 filters, stride 4.
//! let l = ConvLayer::builder("conv1")
//!     .input_hw(227, 227)
//!     .channels(3, 96)
//!     .kernel(11, 11)
//!     .stride(4)
//!     .build()
//!     .unwrap();
//! assert_eq!(l.dim(Dim::P), 55);
//! assert_eq!(l.macs(), 55 * 55 * 96 * 11 * 11 * 3);
//! ```

pub mod dims;
pub mod graph;
pub mod layer;
pub mod zoo;

pub use dims::{Datatype, Dim, DimMap};
pub use graph::{Network, PostOp, Segment};
pub use layer::{ConvLayer, ConvLayerBuilder, LayerShapeError};
