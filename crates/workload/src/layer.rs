//! Convolutional layer shapes.

use std::fmt;

use crate::dims::{Datatype, Dim, DimMap};

/// Error returned when a layer description is geometrically inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerShapeError(String);

impl fmt::Display for LayerShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid layer shape: {}", self.0)
    }
}

impl std::error::Error for LayerShapeError {}

/// A convolutional (or fully-connected) layer (paper Fig. 1a).
///
/// The layer is stored as the seven loop bounds plus stride and padding.
/// The input feature-map spatial extent is derived:
/// `H_in = (P − 1)·stride + R − 2·pad` (and likewise for width), i.e. the
/// usual relation `P = (H_in − R + 2·pad)/stride + 1` from the paper's
/// footnote 1.
///
/// Fully-connected layers set `P = Q = R = S = 1` and use `M`/`C` as the
/// output/input vector sizes (paper §2.1).
///
/// Depthwise layers (MobileNetV2) are marked with [`ConvLayer::depthwise`]:
/// the loop bounds carry `C = 1` and `M` = channel count, and the ifmap is
/// indexed by `M` instead of `C`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConvLayer {
    name: String,
    bounds: DimMap<u64>,
    stride: u64,
    pad: u64,
    depthwise: bool,
    /// Bits per data word (paper evaluation uses 8-bit words).
    word_bits: u32,
}

impl ConvLayer {
    /// Start building a layer with the given name.
    pub fn builder(name: impl Into<String>) -> ConvLayerBuilder {
        ConvLayerBuilder::new(name)
    }

    /// Layer name (unique within a [`Network`](crate::Network)).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The loop bound of dimension `d`.
    #[inline]
    pub fn dim(&self, d: Dim) -> u64 {
        self.bounds[d]
    }

    /// All seven loop bounds.
    pub fn bounds(&self) -> DimMap<u64> {
        self.bounds
    }

    /// Convolution stride (same in both spatial axes).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Zero padding (same on all sides).
    pub fn pad(&self) -> u64 {
        self.pad
    }

    /// Whether this is a depthwise convolution.
    pub fn depthwise(&self) -> bool {
        self.depthwise
    }

    /// Bits per data word.
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Input feature-map height `H_in = (P−1)·stride + R − 2·pad`.
    pub fn ifmap_height(&self) -> u64 {
        (self.dim(Dim::P) - 1) * self.stride + self.dim(Dim::R) - 2 * self.pad
    }

    /// Input feature-map width `W_in = (Q−1)·stride + S − 2·pad`.
    pub fn ifmap_width(&self) -> u64 {
        (self.dim(Dim::Q) - 1) * self.stride + self.dim(Dim::S) - 2 * self.pad
    }

    /// Number of input channels as seen by the ifmap tensor.
    ///
    /// For depthwise layers the loop-bound `C` is 1 but the ifmap actually
    /// has `M` channels (one per group).
    pub fn ifmap_channels(&self) -> u64 {
        if self.depthwise {
            self.dim(Dim::M)
        } else {
            self.dim(Dim::C)
        }
    }

    /// Total multiply-accumulate operations.
    pub fn macs(&self) -> u64 {
        self.bounds.product()
    }

    /// Dimensions relevant to `dt` for *this* layer (accounts for
    /// depthwise ifmap indexing).
    pub fn relevant_dims(&self, dt: Datatype) -> Vec<Dim> {
        let mut dims: Vec<Dim> = dt.relevant_dims().to_vec();
        if self.depthwise && dt == Datatype::Ifmap {
            dims.push(Dim::M);
        }
        dims
    }

    /// Whether `dim` indexes a distinct element of `dt` in this layer.
    pub fn is_relevant(&self, dt: Datatype, dim: Dim) -> bool {
        if self.depthwise && dt == Datatype::Ifmap && dim == Dim::M {
            return true;
        }
        dt.is_relevant(dim)
    }

    /// Number of elements in the given tensor (padding excluded for the
    /// ifmap: only real data is stored off-chip).
    pub fn tensor_elems(&self, dt: Datatype) -> u64 {
        match dt {
            Datatype::Weight => {
                self.dim(Dim::M) * self.dim(Dim::C) * self.dim(Dim::R) * self.dim(Dim::S)
            }
            Datatype::Ifmap => {
                self.dim(Dim::N) * self.ifmap_channels() * self.ifmap_height() * self.ifmap_width()
            }
            Datatype::Ofmap => {
                self.dim(Dim::N) * self.dim(Dim::M) * self.dim(Dim::P) * self.dim(Dim::Q)
            }
        }
    }

    /// Tensor size in bits.
    pub fn tensor_bits(&self, dt: Datatype) -> u64 {
        self.tensor_elems(dt) * u64::from(self.word_bits)
    }

    /// A copy of this layer with a different batch size (the paper
    /// evaluates batch 1; batching multiplies weight reuse).
    pub fn with_batch(&self, n: u64) -> ConvLayer {
        assert!(n > 0, "batch must be positive");
        let mut out = self.clone();
        out.bounds[Dim::N] = n;
        out
    }

    /// Elements of the im2col-expanded ifmap matrix: a matrix-multiply
    /// accelerator (paper Fig. 5b) lowers the convolution to a
    /// `(C·R·S) × (P·Q)` matrix in which every sliding-window element
    /// is duplicated. Tiles of that matrix never overlap (no halos),
    /// at the cost of an `R·S/stride²`-fold larger footprint.
    pub fn im2col_ifmap_elems(&self) -> u64 {
        self.dim(Dim::N)
            * self.ifmap_channels()
            * self.dim(Dim::R)
            * self.dim(Dim::S)
            * self.dim(Dim::P)
            * self.dim(Dim::Q)
    }

    /// The im2col data-duplication factor relative to the direct-conv
    /// ifmap footprint.
    pub fn im2col_duplication(&self) -> f64 {
        self.im2col_ifmap_elems() as f64 / self.tensor_elems(Datatype::Ifmap) as f64
    }

    /// Arithmetic intensity against compulsory off-chip traffic:
    /// `2·MACs / bytes(weight + ifmap + ofmap)` — used by the roofline
    /// model (paper Fig. 12).
    pub fn ideal_intensity(&self) -> f64 {
        let bytes: u64 = Datatype::ALL
            .iter()
            .map(|&dt| self.tensor_bits(dt) / 8)
            .sum();
        (2 * self.macs()) as f64 / bytes as f64
    }
}

impl fmt::Display for ConvLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: N{} M{} C{} P{} Q{} R{} S{} stride{} pad{}{}",
            self.name,
            self.dim(Dim::N),
            self.dim(Dim::M),
            self.dim(Dim::C),
            self.dim(Dim::P),
            self.dim(Dim::Q),
            self.dim(Dim::R),
            self.dim(Dim::S),
            self.stride,
            self.pad,
            if self.depthwise { " (dw)" } else { "" },
        )
    }
}

/// Builder for [`ConvLayer`] starting from the *input* geometry, the way
/// model definitions are usually written.
#[derive(Debug, Clone)]
pub struct ConvLayerBuilder {
    name: String,
    input_h: u64,
    input_w: u64,
    in_channels: u64,
    out_channels: u64,
    r: u64,
    s: u64,
    stride: u64,
    pad: u64,
    batch: u64,
    depthwise: bool,
    word_bits: u32,
}

impl ConvLayerBuilder {
    fn new(name: impl Into<String>) -> Self {
        ConvLayerBuilder {
            name: name.into(),
            input_h: 1,
            input_w: 1,
            in_channels: 1,
            out_channels: 1,
            r: 1,
            s: 1,
            stride: 1,
            pad: 0,
            batch: 1,
            depthwise: false,
            word_bits: 8,
        }
    }

    /// Input feature-map spatial extent.
    pub fn input_hw(mut self, h: u64, w: u64) -> Self {
        self.input_h = h;
        self.input_w = w;
        self
    }

    /// Input and output channel counts.
    pub fn channels(mut self, cin: u64, cout: u64) -> Self {
        self.in_channels = cin;
        self.out_channels = cout;
        self
    }

    /// Filter extent `R × S`.
    pub fn kernel(mut self, r: u64, s: u64) -> Self {
        self.r = r;
        self.s = s;
        self
    }

    /// Convolution stride.
    pub fn stride(mut self, st: u64) -> Self {
        self.stride = st;
        self
    }

    /// Zero padding on every side.
    pub fn pad(mut self, p: u64) -> Self {
        self.pad = p;
        self
    }

    /// Batch size (default 1).
    pub fn batch(mut self, n: u64) -> Self {
        self.batch = n;
        self
    }

    /// Mark as depthwise: `channels(c, c)` with each output channel reading
    /// only its own input channel.
    pub fn depthwise(mut self) -> Self {
        self.depthwise = true;
        self
    }

    /// Bits per data word (default 8).
    pub fn word_bits(mut self, bits: u32) -> Self {
        self.word_bits = bits;
        self
    }

    /// Build a fully-connected layer: `P=Q=R=S=1`.
    pub fn fully_connected(name: impl Into<String>, cin: u64, cout: u64) -> ConvLayer {
        ConvLayerBuilder::new(name)
            .channels(cin, cout)
            .build()
            .expect("FC layer shapes are always valid")
    }

    /// Validate and produce the layer.
    ///
    /// # Errors
    ///
    /// Returns [`LayerShapeError`] when the geometry is inconsistent, e.g.
    /// the padded input is smaller than the kernel, the stride does not
    /// evenly produce an integral output size, or a depthwise layer has
    /// mismatched channel counts.
    pub fn build(self) -> Result<ConvLayer, LayerShapeError> {
        if self.stride == 0 {
            return Err(LayerShapeError("stride must be positive".into()));
        }
        let padded_h = self.input_h + 2 * self.pad;
        let padded_w = self.input_w + 2 * self.pad;
        if padded_h < self.r || padded_w < self.s {
            return Err(LayerShapeError(format!(
                "kernel {}x{} larger than padded input {}x{}",
                self.r, self.s, padded_h, padded_w
            )));
        }
        // Output size uses floor division, as in real frameworks; when the
        // stride does not evenly tile the input, the trailing rows/columns
        // are simply never read and the *effective* ifmap extent derived by
        // [`ConvLayer::ifmap_height`] is what the accelerator fetches.
        if self.depthwise && self.in_channels != self.out_channels {
            return Err(LayerShapeError(format!(
                "depthwise layer must have cin == cout, got {} != {}",
                self.in_channels, self.out_channels
            )));
        }
        let p = (padded_h - self.r) / self.stride + 1;
        let q = (padded_w - self.s) / self.stride + 1;
        let mut bounds = DimMap::splat(1u64);
        bounds[Dim::N] = self.batch;
        bounds[Dim::M] = self.out_channels;
        bounds[Dim::C] = if self.depthwise { 1 } else { self.in_channels };
        bounds[Dim::P] = p;
        bounds[Dim::Q] = q;
        bounds[Dim::R] = self.r;
        bounds[Dim::S] = self.s;
        if bounds.0.contains(&0) {
            return Err(LayerShapeError("all loop bounds must be positive".into()));
        }
        Ok(ConvLayer {
            name: self.name,
            bounds,
            stride: self.stride,
            pad: self.pad,
            depthwise: self.depthwise,
            word_bits: self.word_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alexnet_conv1() -> ConvLayer {
        ConvLayer::builder("conv1")
            .input_hw(227, 227)
            .channels(3, 96)
            .kernel(11, 11)
            .stride(4)
            .build()
            .unwrap()
    }

    #[test]
    fn alexnet_conv1_shape() {
        let l = alexnet_conv1();
        assert_eq!(l.dim(Dim::P), 55);
        assert_eq!(l.dim(Dim::Q), 55);
        assert_eq!(l.ifmap_height(), 227);
        assert_eq!(l.tensor_elems(Datatype::Weight), 96 * 3 * 11 * 11);
        assert_eq!(l.tensor_elems(Datatype::Ofmap), 96 * 55 * 55);
        assert_eq!(l.tensor_elems(Datatype::Ifmap), 3 * 227 * 227);
        assert_eq!(l.macs(), 96 * 3 * 55 * 55 * 11 * 11);
    }

    #[test]
    fn padded_layer_derives_input() {
        // ResNet 3x3 pad-1 conv keeps spatial size.
        let l = ConvLayer::builder("c")
            .input_hw(56, 56)
            .channels(64, 64)
            .kernel(3, 3)
            .pad(1)
            .build()
            .unwrap();
        assert_eq!(l.dim(Dim::P), 56);
        assert_eq!(l.ifmap_height(), 56);
    }

    #[test]
    fn fc_layer_is_matrix_vector() {
        let l = ConvLayerBuilder::fully_connected("fc", 512, 1000);
        assert_eq!(l.dim(Dim::P), 1);
        assert_eq!(l.dim(Dim::R), 1);
        assert_eq!(l.macs(), 512 * 1000);
        assert_eq!(l.tensor_elems(Datatype::Weight), 512 * 1000);
    }

    #[test]
    fn depthwise_ifmap_indexed_by_m() {
        let l = ConvLayer::builder("dw")
            .input_hw(112, 112)
            .channels(32, 32)
            .kernel(3, 3)
            .pad(1)
            .depthwise()
            .build()
            .unwrap();
        assert_eq!(l.dim(Dim::C), 1);
        assert_eq!(l.ifmap_channels(), 32);
        assert!(l.is_relevant(Datatype::Ifmap, Dim::M));
        assert!(!l.is_relevant(Datatype::Ofmap, Dim::C));
        assert_eq!(l.macs(), 32 * 112 * 112 * 9);
    }

    #[test]
    fn invalid_shapes_are_rejected() {
        assert!(ConvLayer::builder("bad")
            .input_hw(5, 5)
            .kernel(7, 7)
            .build()
            .is_err());
        // Uneven strides are allowed (floor division), matching frameworks.
        let l = ConvLayer::builder("ok")
            .input_hw(6, 6)
            .kernel(3, 3)
            .stride(2)
            .build()
            .unwrap();
        assert_eq!(l.dim(Dim::P), 2);
        assert!(ConvLayer::builder("bad")
            .input_hw(8, 8)
            .channels(4, 8)
            .kernel(3, 3)
            .depthwise()
            .build()
            .is_err());
        assert!(ConvLayer::builder("bad").stride(0).build().is_err());
    }

    #[test]
    fn intensity_is_positive_and_finite() {
        let l = alexnet_conv1();
        let i = l.ideal_intensity();
        assert!(i > 1.0 && i.is_finite());
    }

    #[test]
    fn display_contains_dims() {
        let s = alexnet_conv1().to_string();
        assert!(s.contains("M96"));
        assert!(s.contains("stride4"));
    }
}
