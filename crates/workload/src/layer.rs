//! Convolutional layer shapes.

use std::fmt;

use crate::dims::{Datatype, Dim, DimMap};

/// Error returned when a layer description is geometrically inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerShapeError(String);

impl fmt::Display for LayerShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid layer shape: {}", self.0)
    }
}

impl std::error::Error for LayerShapeError {}

/// A convolutional (or fully-connected) layer (paper Fig. 1a).
///
/// The layer is stored as the seven loop bounds plus stride and padding.
/// The input feature-map spatial extent is derived:
/// `H_in = (P − 1)·stride + R − 2·pad` (and likewise for width), i.e. the
/// usual relation `P = (H_in − R + 2·pad)/stride + 1` from the paper's
/// footnote 1.
///
/// Fully-connected layers set `P = Q = R = S = 1` and use `M`/`C` as the
/// output/input vector sizes (paper §2.1).
///
/// Depthwise layers (MobileNetV2) are marked with [`ConvLayer::depthwise`]:
/// the loop bounds carry `C = 1` and `M` = channel count, and the ifmap is
/// indexed by `M` instead of `C`.
///
/// Grouped convolutions (AlexNet's original conv2/4/5, ResNeXt) carry
/// [`ConvLayer::groups`] `> 1`: the loop bound `C` is the *per-group*
/// input channel count `C_in / g`, the ifmap holds all `C_in` channels,
/// and each output channel reads only its own group's slice — so `M`
/// becomes relevant to ifmap indexing, like the depthwise special case
/// (`g = C_in`). MACs and weight footprints shrink by `g` automatically
/// because they are products over the loop bounds.
///
/// Dilated convolutions (DeepLab-style context modules) carry
/// [`ConvLayer::dilation`] `> 1`: the filter taps are spaced `dilation`
/// elements apart, so the effective receptive extent is
/// `(R − 1)·dilation + 1` and every input-geometry relation uses that in
/// place of `R`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConvLayer {
    name: String,
    bounds: DimMap<u64>,
    stride: u64,
    pad: u64,
    depthwise: bool,
    /// Convolution groups (1 = dense). `C` holds the per-group input
    /// channel count.
    groups: u64,
    /// Filter-tap spacing (1 = ordinary convolution).
    dilation: u64,
    /// Bits per data word (paper evaluation uses 8-bit words).
    word_bits: u32,
}

impl ConvLayer {
    /// Start building a layer with the given name.
    pub fn builder(name: impl Into<String>) -> ConvLayerBuilder {
        ConvLayerBuilder::new(name)
    }

    /// Layer name (unique within a [`Network`](crate::Network)).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The loop bound of dimension `d`.
    #[inline]
    pub fn dim(&self, d: Dim) -> u64 {
        self.bounds[d]
    }

    /// All seven loop bounds.
    pub fn bounds(&self) -> DimMap<u64> {
        self.bounds
    }

    /// Convolution stride (same in both spatial axes).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Zero padding (same on all sides).
    pub fn pad(&self) -> u64 {
        self.pad
    }

    /// Whether this is a depthwise convolution.
    pub fn depthwise(&self) -> bool {
        self.depthwise
    }

    /// Number of convolution groups (1 = dense, ungrouped).
    pub fn groups(&self) -> u64 {
        self.groups
    }

    /// Filter-tap spacing (1 = ordinary convolution).
    pub fn dilation(&self) -> u64 {
        self.dilation
    }

    /// Bits per data word.
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Effective filter row extent `(R − 1)·dilation + 1`: the input
    /// rows a single filter application spans.
    pub fn kernel_extent_h(&self) -> u64 {
        (self.dim(Dim::R) - 1) * self.dilation + 1
    }

    /// Effective filter column extent `(S − 1)·dilation + 1`.
    pub fn kernel_extent_w(&self) -> u64 {
        (self.dim(Dim::S) - 1) * self.dilation + 1
    }

    /// Input feature-map height `H_in = (P−1)·stride + (R−1)·dilation + 1 − 2·pad`.
    pub fn ifmap_height(&self) -> u64 {
        (self.dim(Dim::P) - 1) * self.stride + self.kernel_extent_h() - 2 * self.pad
    }

    /// Input feature-map width `W_in = (Q−1)·stride + (S−1)·dilation + 1 − 2·pad`.
    pub fn ifmap_width(&self) -> u64 {
        (self.dim(Dim::Q) - 1) * self.stride + self.kernel_extent_w() - 2 * self.pad
    }

    /// Number of input channels as seen by the ifmap tensor.
    ///
    /// For depthwise layers the loop-bound `C` is 1 but the ifmap actually
    /// has `M` channels (one per group); for grouped layers it has
    /// `groups·C` channels.
    pub fn ifmap_channels(&self) -> u64 {
        if self.depthwise {
            self.dim(Dim::M)
        } else {
            self.groups * self.dim(Dim::C)
        }
    }

    /// Input channels touched by a tile covering `m_tile` output
    /// channels and `c_tile` loop-bound-`C` values.
    ///
    /// Dense layers touch `c_tile` channels regardless of `m_tile`;
    /// depthwise layers touch `m_tile` (one per output channel). Grouped
    /// layers touch `c_tile` per intersected group, assuming group-aligned
    /// output-channel tiling (tiles either stay inside one group or span
    /// whole groups — how schedulers tile grouped convolutions in
    /// practice).
    pub fn ifmap_tile_channels(&self, m_tile: u64, c_tile: u64) -> u64 {
        if self.depthwise {
            return m_tile;
        }
        if self.groups == 1 {
            return c_tile;
        }
        let per_group_m = self.dim(Dim::M) / self.groups;
        let spanned = m_tile.div_ceil(per_group_m).min(self.groups);
        (spanned * c_tile).min(self.ifmap_channels())
    }

    /// Total multiply-accumulate operations.
    pub fn macs(&self) -> u64 {
        self.bounds.product()
    }

    /// Dimensions relevant to `dt` for *this* layer (accounts for
    /// depthwise and grouped ifmap indexing: `M` selects the group).
    pub fn relevant_dims(&self, dt: Datatype) -> Vec<Dim> {
        let mut dims: Vec<Dim> = dt.relevant_dims().to_vec();
        if (self.depthwise || self.groups > 1) && dt == Datatype::Ifmap {
            dims.push(Dim::M);
        }
        dims
    }

    /// Whether `dim` indexes a distinct element of `dt` in this layer.
    pub fn is_relevant(&self, dt: Datatype, dim: Dim) -> bool {
        if (self.depthwise || self.groups > 1) && dt == Datatype::Ifmap && dim == Dim::M {
            return true;
        }
        dt.is_relevant(dim)
    }

    /// Number of elements in the given tensor (padding excluded for the
    /// ifmap: only real data is stored off-chip).
    pub fn tensor_elems(&self, dt: Datatype) -> u64 {
        match dt {
            Datatype::Weight => {
                self.dim(Dim::M) * self.dim(Dim::C) * self.dim(Dim::R) * self.dim(Dim::S)
            }
            Datatype::Ifmap => {
                self.dim(Dim::N) * self.ifmap_channels() * self.ifmap_height() * self.ifmap_width()
            }
            Datatype::Ofmap => {
                self.dim(Dim::N) * self.dim(Dim::M) * self.dim(Dim::P) * self.dim(Dim::Q)
            }
        }
    }

    /// Tensor size in bits.
    pub fn tensor_bits(&self, dt: Datatype) -> u64 {
        self.tensor_elems(dt) * u64::from(self.word_bits)
    }

    /// A copy of this layer with a different batch size (the paper
    /// evaluates batch 1; batching multiplies weight reuse).
    pub fn with_batch(&self, n: u64) -> ConvLayer {
        assert!(n > 0, "batch must be positive");
        let mut out = self.clone();
        out.bounds[Dim::N] = n;
        out
    }

    /// A copy of this layer with a different word width (int8 vs fp16
    /// precision sweeps: word width scales every tensor and crypto bit
    /// count).
    pub fn with_word_bits(&self, bits: u32) -> ConvLayer {
        assert!(bits > 0, "word width must be positive");
        let mut out = self.clone();
        out.word_bits = bits;
        out
    }

    /// Elements of the im2col-expanded ifmap matrix: a matrix-multiply
    /// accelerator (paper Fig. 5b) lowers the convolution to a
    /// `(C·R·S) × (P·Q)` matrix in which every sliding-window element
    /// is duplicated. Tiles of that matrix never overlap (no halos),
    /// at the cost of an `R·S/stride²`-fold larger footprint.
    pub fn im2col_ifmap_elems(&self) -> u64 {
        self.dim(Dim::N)
            * self.ifmap_channels()
            * self.dim(Dim::R)
            * self.dim(Dim::S)
            * self.dim(Dim::P)
            * self.dim(Dim::Q)
    }

    /// The im2col data-duplication factor relative to the direct-conv
    /// ifmap footprint.
    pub fn im2col_duplication(&self) -> f64 {
        self.im2col_ifmap_elems() as f64 / self.tensor_elems(Datatype::Ifmap) as f64
    }

    /// Arithmetic intensity against compulsory off-chip traffic:
    /// `2·MACs / bytes(weight + ifmap + ofmap)` — used by the roofline
    /// model (paper Fig. 12).
    pub fn ideal_intensity(&self) -> f64 {
        let bytes: u64 = Datatype::ALL
            .iter()
            .map(|&dt| self.tensor_bits(dt) / 8)
            .sum();
        (2 * self.macs()) as f64 / bytes as f64
    }
}

impl fmt::Display for ConvLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: N{} M{} C{} P{} Q{} R{} S{} stride{} pad{}{}",
            self.name,
            self.dim(Dim::N),
            self.dim(Dim::M),
            self.dim(Dim::C),
            self.dim(Dim::P),
            self.dim(Dim::Q),
            self.dim(Dim::R),
            self.dim(Dim::S),
            self.stride,
            self.pad,
            if self.depthwise { " (dw)" } else { "" },
        )?;
        if self.groups > 1 {
            write!(f, " g{}", self.groups)?;
        }
        if self.dilation > 1 {
            write!(f, " d{}", self.dilation)?;
        }
        Ok(())
    }
}

/// Builder for [`ConvLayer`] starting from the *input* geometry, the way
/// model definitions are usually written.
#[derive(Debug, Clone)]
pub struct ConvLayerBuilder {
    name: String,
    input_h: u64,
    input_w: u64,
    in_channels: u64,
    out_channels: u64,
    r: u64,
    s: u64,
    stride: u64,
    pad: u64,
    batch: u64,
    depthwise: bool,
    groups: u64,
    dilation: u64,
    word_bits: u32,
}

impl ConvLayerBuilder {
    fn new(name: impl Into<String>) -> Self {
        ConvLayerBuilder {
            name: name.into(),
            input_h: 1,
            input_w: 1,
            in_channels: 1,
            out_channels: 1,
            r: 1,
            s: 1,
            stride: 1,
            pad: 0,
            batch: 1,
            depthwise: false,
            groups: 1,
            dilation: 1,
            word_bits: 8,
        }
    }

    /// Input feature-map spatial extent.
    pub fn input_hw(mut self, h: u64, w: u64) -> Self {
        self.input_h = h;
        self.input_w = w;
        self
    }

    /// Input and output channel counts.
    pub fn channels(mut self, cin: u64, cout: u64) -> Self {
        self.in_channels = cin;
        self.out_channels = cout;
        self
    }

    /// Filter extent `R × S`.
    pub fn kernel(mut self, r: u64, s: u64) -> Self {
        self.r = r;
        self.s = s;
        self
    }

    /// Convolution stride.
    pub fn stride(mut self, st: u64) -> Self {
        self.stride = st;
        self
    }

    /// Zero padding on every side.
    pub fn pad(mut self, p: u64) -> Self {
        self.pad = p;
        self
    }

    /// Batch size (default 1).
    pub fn batch(mut self, n: u64) -> Self {
        self.batch = n;
        self
    }

    /// Mark as depthwise: `channels(c, c)` with each output channel reading
    /// only its own input channel.
    pub fn depthwise(mut self) -> Self {
        self.depthwise = true;
        self
    }

    /// Split the convolution into `g` groups: each output channel reads
    /// only the `cin/g` input channels of its group (AlexNet's original
    /// conv2/4/5, ResNeXt). `g = 1` is the dense default; depthwise is
    /// the `g = cin` extreme and keeps its dedicated
    /// [`ConvLayerBuilder::depthwise`] encoding.
    pub fn groups(mut self, g: u64) -> Self {
        self.groups = g;
        self
    }

    /// Space the filter taps `d` elements apart (dilated / atrous
    /// convolution); the effective receptive extent becomes
    /// `(R − 1)·d + 1`.
    pub fn dilation(mut self, d: u64) -> Self {
        self.dilation = d;
        self
    }

    /// Bits per data word (default 8).
    pub fn word_bits(mut self, bits: u32) -> Self {
        self.word_bits = bits;
        self
    }

    /// Build a fully-connected layer: `P=Q=R=S=1`.
    pub fn fully_connected(name: impl Into<String>, cin: u64, cout: u64) -> ConvLayer {
        ConvLayerBuilder::new(name)
            .channels(cin, cout)
            .build()
            .expect("FC layer shapes are always valid")
    }

    /// Validate and produce the layer.
    ///
    /// # Errors
    ///
    /// Returns [`LayerShapeError`] when the geometry is inconsistent, e.g.
    /// the padded input is smaller than the kernel, the stride does not
    /// evenly produce an integral output size, or a depthwise layer has
    /// mismatched channel counts.
    pub fn build(self) -> Result<ConvLayer, LayerShapeError> {
        if self.stride == 0 {
            return Err(LayerShapeError("stride must be positive".into()));
        }
        if self.dilation == 0 {
            return Err(LayerShapeError("dilation must be positive".into()));
        }
        if self.groups == 0 {
            return Err(LayerShapeError("groups must be positive".into()));
        }
        // Effective (dilated) filter extent.
        let r_eff = (self.r - 1) * self.dilation + 1;
        let s_eff = (self.s - 1) * self.dilation + 1;
        let padded_h = self.input_h + 2 * self.pad;
        let padded_w = self.input_w + 2 * self.pad;
        if padded_h < r_eff || padded_w < s_eff {
            return Err(LayerShapeError(format!(
                "effective kernel {r_eff}x{s_eff} larger than padded input {padded_h}x{padded_w}"
            )));
        }
        // Output size uses floor division, as in real frameworks; when the
        // stride does not evenly tile the input, the trailing rows/columns
        // are simply never read and the *effective* ifmap extent derived by
        // [`ConvLayer::ifmap_height`] is what the accelerator fetches.
        if self.depthwise && self.in_channels != self.out_channels {
            return Err(LayerShapeError(format!(
                "depthwise layer must have cin == cout, got {} != {}",
                self.in_channels, self.out_channels
            )));
        }
        if self.depthwise && self.groups > 1 {
            return Err(LayerShapeError(
                "depthwise layers already group per channel; use one of \
                 depthwise() or groups(g)"
                    .into(),
            ));
        }
        if self.in_channels % self.groups != 0 || self.out_channels % self.groups != 0 {
            return Err(LayerShapeError(format!(
                "groups {} must divide both cin {} and cout {}",
                self.groups, self.in_channels, self.out_channels
            )));
        }
        let p = (padded_h - r_eff) / self.stride + 1;
        let q = (padded_w - s_eff) / self.stride + 1;
        let mut bounds = DimMap::splat(1u64);
        bounds[Dim::N] = self.batch;
        bounds[Dim::M] = self.out_channels;
        bounds[Dim::C] = if self.depthwise {
            1
        } else {
            self.in_channels / self.groups
        };
        bounds[Dim::P] = p;
        bounds[Dim::Q] = q;
        bounds[Dim::R] = self.r;
        bounds[Dim::S] = self.s;
        if bounds.0.contains(&0) {
            return Err(LayerShapeError("all loop bounds must be positive".into()));
        }
        Ok(ConvLayer {
            name: self.name,
            bounds,
            stride: self.stride,
            pad: self.pad,
            depthwise: self.depthwise,
            groups: self.groups,
            dilation: self.dilation,
            word_bits: self.word_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alexnet_conv1() -> ConvLayer {
        ConvLayer::builder("conv1")
            .input_hw(227, 227)
            .channels(3, 96)
            .kernel(11, 11)
            .stride(4)
            .build()
            .unwrap()
    }

    #[test]
    fn alexnet_conv1_shape() {
        let l = alexnet_conv1();
        assert_eq!(l.dim(Dim::P), 55);
        assert_eq!(l.dim(Dim::Q), 55);
        assert_eq!(l.ifmap_height(), 227);
        assert_eq!(l.tensor_elems(Datatype::Weight), 96 * 3 * 11 * 11);
        assert_eq!(l.tensor_elems(Datatype::Ofmap), 96 * 55 * 55);
        assert_eq!(l.tensor_elems(Datatype::Ifmap), 3 * 227 * 227);
        assert_eq!(l.macs(), 96 * 3 * 55 * 55 * 11 * 11);
    }

    #[test]
    fn padded_layer_derives_input() {
        // ResNet 3x3 pad-1 conv keeps spatial size.
        let l = ConvLayer::builder("c")
            .input_hw(56, 56)
            .channels(64, 64)
            .kernel(3, 3)
            .pad(1)
            .build()
            .unwrap();
        assert_eq!(l.dim(Dim::P), 56);
        assert_eq!(l.ifmap_height(), 56);
    }

    #[test]
    fn fc_layer_is_matrix_vector() {
        let l = ConvLayerBuilder::fully_connected("fc", 512, 1000);
        assert_eq!(l.dim(Dim::P), 1);
        assert_eq!(l.dim(Dim::R), 1);
        assert_eq!(l.macs(), 512 * 1000);
        assert_eq!(l.tensor_elems(Datatype::Weight), 512 * 1000);
    }

    #[test]
    fn depthwise_ifmap_indexed_by_m() {
        let l = ConvLayer::builder("dw")
            .input_hw(112, 112)
            .channels(32, 32)
            .kernel(3, 3)
            .pad(1)
            .depthwise()
            .build()
            .unwrap();
        assert_eq!(l.dim(Dim::C), 1);
        assert_eq!(l.ifmap_channels(), 32);
        assert!(l.is_relevant(Datatype::Ifmap, Dim::M));
        assert!(!l.is_relevant(Datatype::Ofmap, Dim::C));
        assert_eq!(l.macs(), 32 * 112 * 112 * 9);
    }

    #[test]
    fn invalid_shapes_are_rejected() {
        assert!(ConvLayer::builder("bad")
            .input_hw(5, 5)
            .kernel(7, 7)
            .build()
            .is_err());
        // Uneven strides are allowed (floor division), matching frameworks.
        let l = ConvLayer::builder("ok")
            .input_hw(6, 6)
            .kernel(3, 3)
            .stride(2)
            .build()
            .unwrap();
        assert_eq!(l.dim(Dim::P), 2);
        assert!(ConvLayer::builder("bad")
            .input_hw(8, 8)
            .channels(4, 8)
            .kernel(3, 3)
            .depthwise()
            .build()
            .is_err());
        assert!(ConvLayer::builder("bad").stride(0).build().is_err());
    }

    #[test]
    fn grouped_conv_shrinks_weights_and_macs() {
        // AlexNet conv2 in its original two-tower (grouped) form.
        let dense = ConvLayer::builder("conv2")
            .input_hw(27, 27)
            .channels(96, 256)
            .kernel(5, 5)
            .pad(2)
            .build()
            .unwrap();
        let grouped = ConvLayer::builder("conv2g")
            .input_hw(27, 27)
            .channels(96, 256)
            .kernel(5, 5)
            .pad(2)
            .groups(2)
            .build()
            .unwrap();
        assert_eq!(grouped.dim(Dim::C), 48);
        assert_eq!(grouped.groups(), 2);
        assert_eq!(grouped.macs() * 2, dense.macs());
        assert_eq!(
            grouped.tensor_elems(Datatype::Weight) * 2,
            dense.tensor_elems(Datatype::Weight)
        );
        // The ifmap still stores all 96 channels.
        assert_eq!(grouped.ifmap_channels(), 96);
        assert_eq!(
            grouped.tensor_elems(Datatype::Ifmap),
            dense.tensor_elems(Datatype::Ifmap)
        );
        // M selects the group, so it is ifmap-relevant.
        assert!(grouped.is_relevant(Datatype::Ifmap, Dim::M));
        assert!(!dense.is_relevant(Datatype::Ifmap, Dim::M));
    }

    #[test]
    fn grouped_tile_channels_span_groups() {
        let l = ConvLayer::builder("g4")
            .input_hw(14, 14)
            .channels(64, 128)
            .kernel(3, 3)
            .pad(1)
            .groups(4)
            .build()
            .unwrap();
        // 32 output channels per group, 16 in-group input channels each.
        assert_eq!(l.ifmap_tile_channels(32, 16), 16);
        assert_eq!(l.ifmap_tile_channels(64, 16), 32);
        assert_eq!(l.ifmap_tile_channels(128, 16), 64);
        // Clamped to the stored channel count.
        assert_eq!(l.ifmap_tile_channels(128, 16), l.ifmap_channels());
        // Dense and depthwise behave as before.
        let dense = ConvLayer::builder("d")
            .input_hw(14, 14)
            .channels(64, 128)
            .kernel(3, 3)
            .pad(1)
            .build()
            .unwrap();
        assert_eq!(dense.ifmap_tile_channels(128, 16), 16);
        let dw = ConvLayer::builder("dw")
            .input_hw(14, 14)
            .channels(64, 64)
            .kernel(3, 3)
            .pad(1)
            .depthwise()
            .build()
            .unwrap();
        assert_eq!(dw.ifmap_tile_channels(8, 1), 8);
    }

    #[test]
    fn dilated_conv_geometry() {
        // 3x3 dilation-2 conv with pad 2 keeps spatial size (effective
        // 5x5 kernel).
        let l = ConvLayer::builder("atrous")
            .input_hw(28, 28)
            .channels(32, 32)
            .kernel(3, 3)
            .pad(2)
            .dilation(2)
            .build()
            .unwrap();
        assert_eq!(l.kernel_extent_h(), 5);
        assert_eq!(l.dim(Dim::P), 28);
        assert_eq!(l.ifmap_height(), 28);
        // MACs unchanged by dilation (still 9 taps).
        assert_eq!(l.macs(), 32 * 32 * 28 * 28 * 9);
        // Effective kernel larger than the padded input is rejected.
        assert!(ConvLayer::builder("bad")
            .input_hw(5, 5)
            .kernel(3, 3)
            .dilation(4)
            .build()
            .is_err());
    }

    #[test]
    fn invalid_group_and_dilation_configs_rejected() {
        assert!(ConvLayer::builder("g0")
            .input_hw(8, 8)
            .channels(4, 4)
            .groups(0)
            .build()
            .is_err());
        assert!(ConvLayer::builder("d0")
            .input_hw(8, 8)
            .channels(4, 4)
            .dilation(0)
            .build()
            .is_err());
        // groups must divide both channel counts.
        assert!(ConvLayer::builder("g3")
            .input_hw(8, 8)
            .channels(4, 8)
            .groups(3)
            .build()
            .is_err());
        // depthwise + groups is contradictory.
        assert!(ConvLayer::builder("dwg")
            .input_hw(8, 8)
            .channels(4, 4)
            .kernel(3, 3)
            .depthwise()
            .groups(2)
            .build()
            .is_err());
    }

    #[test]
    fn word_width_variant_scales_tensor_bits() {
        let l = alexnet_conv1();
        let fp16 = l.with_word_bits(16);
        assert_eq!(fp16.word_bits(), 16);
        assert_eq!(
            fp16.tensor_bits(Datatype::Weight),
            2 * l.tensor_bits(Datatype::Weight)
        );
        assert_eq!(fp16.macs(), l.macs());
    }

    #[test]
    fn intensity_is_positive_and_finite() {
        let l = alexnet_conv1();
        let i = l.ideal_intensity();
        assert!(i > 1.0 && i.is_finite());
    }

    #[test]
    fn display_contains_dims() {
        let s = alexnet_conv1().to_string();
        assert!(s.contains("M96"));
        assert!(s.contains("stride4"));
    }
}
