//! The canonical seven-dimensional convolution iteration space.
//!
//! Following Timeloop's convention (paper §2.1), a convolutional layer is a
//! seven-deep loop nest over:
//!
//! | Dim | Meaning |
//! |-----|---------|
//! | `N` | batch |
//! | `M` | output channels |
//! | `C` | input channels |
//! | `P` | output rows |
//! | `Q` | output columns |
//! | `R` | filter rows |
//! | `S` | filter columns |

use std::fmt;
use std::ops::{Index, IndexMut};

/// One of the seven canonical convolution dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dim {
    /// Batch.
    N,
    /// Output channels.
    M,
    /// Input channels.
    C,
    /// Output feature-map rows.
    P,
    /// Output feature-map columns.
    Q,
    /// Filter rows.
    R,
    /// Filter columns.
    S,
}

impl Dim {
    /// All seven dimensions, in canonical order.
    pub const ALL: [Dim; 7] = [Dim::N, Dim::M, Dim::C, Dim::P, Dim::Q, Dim::R, Dim::S];

    /// Index of this dimension within [`Dim::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Dim::N => 0,
            Dim::M => 1,
            Dim::C => 2,
            Dim::P => 3,
            Dim::Q => 4,
            Dim::R => 5,
            Dim::S => 6,
        }
    }

    /// The dimension at position `i` of [`Dim::ALL`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= 7`.
    #[inline]
    pub fn from_index(i: usize) -> Dim {
        Dim::ALL[i]
    }

    /// Whether this is a *reduction* dimension: iterating it accumulates
    /// into the same output element (`C`, `R`, `S`).
    #[inline]
    pub fn is_reduction(self) -> bool {
        matches!(self, Dim::C | Dim::R | Dim::S)
    }

    /// Single-letter name used in loopnest pretty-printing.
    pub fn letter(self) -> char {
        match self {
            Dim::N => 'N',
            Dim::M => 'M',
            Dim::C => 'C',
            Dim::P => 'P',
            Dim::Q => 'Q',
            Dim::R => 'R',
            Dim::S => 'S',
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// The three tensor datatypes moved between memory levels (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Datatype {
    /// Filter weights (`M × C × R × S`).
    Weight,
    /// Input feature map (`N × C × P′ × Q′`).
    Ifmap,
    /// Output feature map (`N × M × P × Q`).
    Ofmap,
}

impl Datatype {
    /// All three datatypes in canonical order.
    pub const ALL: [Datatype; 3] = [Datatype::Weight, Datatype::Ifmap, Datatype::Ofmap];

    /// Dimensions that select a *different* element of this datatype.
    ///
    /// For the ifmap, `P`/`Q` combined with `R`/`S` address the sliding
    /// window; all of `N, C, P, Q, R, S` are relevant. Depthwise layers
    /// additionally make `M` relevant to the ifmap (each output channel
    /// reads its own input channel); that is handled by
    /// [`ConvLayer::relevant_dims`](crate::ConvLayer::relevant_dims)
    /// rather than here.
    pub fn relevant_dims(self) -> &'static [Dim] {
        match self {
            Datatype::Weight => &[Dim::M, Dim::C, Dim::R, Dim::S],
            Datatype::Ifmap => &[Dim::N, Dim::C, Dim::P, Dim::Q, Dim::R, Dim::S],
            Datatype::Ofmap => &[Dim::N, Dim::M, Dim::P, Dim::Q],
        }
    }

    /// Whether `dim` is relevant to this datatype (non-depthwise case).
    #[inline]
    pub fn is_relevant(self, dim: Dim) -> bool {
        self.relevant_dims().contains(&dim)
    }

    /// Short lowercase name (`"weight"`, `"ifmap"`, `"ofmap"`).
    pub fn name(self) -> &'static str {
        match self {
            Datatype::Weight => "weight",
            Datatype::Ifmap => "ifmap",
            Datatype::Ofmap => "ofmap",
        }
    }
}

impl fmt::Display for Datatype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dense map from [`Dim`] to a value, stored inline.
///
/// Used pervasively for loop bounds and tiling factors.
///
/// ```
/// use secureloop_workload::{Dim, DimMap};
///
/// let mut bounds = DimMap::splat(1u64);
/// bounds[Dim::M] = 96;
/// assert_eq!(bounds.product(), 96);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimMap<T>(pub [T; 7]);

impl<T: Copy> DimMap<T> {
    /// A map with every dimension set to `v`.
    pub fn splat(v: T) -> Self {
        DimMap([v; 7])
    }

    /// Iterate `(Dim, value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Dim, T)> + '_ {
        Dim::ALL.iter().map(move |&d| (d, self.0[d.index()]))
    }
}

impl DimMap<u64> {
    /// Product of all seven entries.
    pub fn product(&self) -> u64 {
        self.0.iter().product()
    }
}

impl<T> Index<Dim> for DimMap<T> {
    type Output = T;
    fn index(&self, d: Dim) -> &T {
        &self.0[d.index()]
    }
}

impl<T> IndexMut<Dim> for DimMap<T> {
    fn index_mut(&mut self, d: Dim) -> &mut T {
        &mut self.0[d.index()]
    }
}

impl<T: Copy + Default> Default for DimMap<T> {
    fn default() -> Self {
        DimMap([T::default(); 7])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_roundtrip() {
        for (i, &d) in Dim::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(Dim::from_index(i), d);
        }
    }

    #[test]
    fn reduction_dims() {
        let red: Vec<Dim> = Dim::ALL
            .iter()
            .copied()
            .filter(|d| d.is_reduction())
            .collect();
        assert_eq!(red, vec![Dim::C, Dim::R, Dim::S]);
    }

    #[test]
    fn relevance_matches_tensor_indexing() {
        // Weights are indexed by M,C,R,S only.
        assert!(Datatype::Weight.is_relevant(Dim::M));
        assert!(!Datatype::Weight.is_relevant(Dim::P));
        // Ofmap is indexed by N,M,P,Q only.
        assert!(!Datatype::Ofmap.is_relevant(Dim::C));
        assert!(Datatype::Ofmap.is_relevant(Dim::Q));
        // Ifmap depends on the sliding window: P,Q,R,S all relevant.
        for d in [Dim::P, Dim::Q, Dim::R, Dim::S, Dim::C, Dim::N] {
            assert!(Datatype::Ifmap.is_relevant(d));
        }
        assert!(!Datatype::Ifmap.is_relevant(Dim::M));
    }

    #[test]
    fn dimmap_product_and_index() {
        let mut m = DimMap::splat(2u64);
        assert_eq!(m.product(), 128);
        m[Dim::C] = 5;
        assert_eq!(m[Dim::C], 5);
        assert_eq!(m.product(), 64 / 2 * 5 * 2);
        assert_eq!(m.iter().count(), 7);
    }

    #[test]
    fn display_letters() {
        let s: String = Dim::ALL.iter().map(|d| d.letter()).collect();
        assert_eq!(s, "NMCPQRS");
        assert_eq!(Datatype::Ifmap.to_string(), "ifmap");
    }
}
