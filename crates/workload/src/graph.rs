//! Networks: chains of layers with post-processing operations.
//!
//! The paper (§4.3) distinguishes two kinds of post-processing between
//! consecutive layers:
//!
//! * **Fusable** ops (BatchNorm, ReLU, zero-padding) are computed on the fly
//!   while the ofmap is generated, so the producer's ofmap tensor is the
//!   consumer's ifmap tensor and AuthBlock assignment couples the two
//!   layers.
//! * **Boundary** ops (pooling, residual addition) need a separate pass
//!   over the data, which "inevitably triggers rehashing"; the network is
//!   split into *segments* at those points, and cross-layer fine-tuning
//!   runs within each segment independently.

use std::fmt;

use crate::layer::ConvLayer;

/// A post-processing operation attached to the output of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PostOp {
    /// Batch normalisation — fusable (paper §4.3).
    BatchNorm,
    /// ReLU / ReLU6 activation — fusable.
    Relu,
    /// Zero padding for the next layer — fusable.
    ZeroPad,
    /// Max pooling — segment boundary.
    MaxPool,
    /// Average pooling — segment boundary.
    AvgPool,
    /// Residual (skip-connection) addition — segment boundary.
    ResidualAdd,
    /// Attention-score softmax (the `QKᵀ`/softmax/mix pass between a
    /// projection and its consumer) — a separate pass over the data,
    /// so a segment boundary.
    Softmax,
    /// Layer normalisation — needs the full token vector (a reduction
    /// across channels) before any output can stream, so a segment
    /// boundary, unlike the per-element BatchNorm.
    LayerNorm,
}

impl PostOp {
    /// Whether this op can be computed while the ofmap streams out
    /// (fusable), or requires a separate pass (segment boundary).
    pub fn is_fusable(self) -> bool {
        matches!(self, PostOp::BatchNorm | PostOp::Relu | PostOp::ZeroPad)
    }
}

impl fmt::Display for PostOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PostOp::BatchNorm => "bn",
            PostOp::Relu => "relu",
            PostOp::ZeroPad => "pad",
            PostOp::MaxPool => "maxpool",
            PostOp::AvgPool => "avgpool",
            PostOp::ResidualAdd => "add",
            PostOp::Softmax => "softmax",
            PostOp::LayerNorm => "ln",
        };
        f.write_str(s)
    }
}

/// A contiguous run of layer indices whose ofmap→ifmap tensors are shared
/// without rehashing; cross-layer fine-tuning operates per segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Indices into [`Network::layers`], in execution order.
    pub layers: Vec<usize>,
}

impl Segment {
    /// Pairs `(producer, consumer)` of layer indices whose tensors are
    /// coupled by AuthBlock assignment.
    pub fn coupled_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.layers.windows(2).map(|w| (w[0], w[1]))
    }
}

/// A DNN described as a topologically-ordered chain of conv layers with
/// post-processing markers.
///
/// Residual branches are represented by their boundary [`PostOp`]s: the
/// actual elementwise add always terminates a segment (paper §4.3), so a
/// linear chain with boundary markers captures everything the scheduler
/// needs.
#[derive(Debug, Clone)]
pub struct Network {
    name: String,
    layers: Vec<ConvLayer>,
    /// `post_ops[i]` are applied to the output of `layers[i]`.
    post_ops: Vec<Vec<PostOp>>,
}

impl Network {
    /// Create an empty network.
    pub fn new(name: impl Into<String>) -> Self {
        Network {
            name: name.into(),
            layers: Vec::new(),
            post_ops: Vec::new(),
        }
    }

    /// Append a layer with the given post-processing ops on its output.
    pub fn push(&mut self, layer: ConvLayer, post: &[PostOp]) {
        self.layers.push(layer);
        self.post_ops.push(post.to_vec());
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[ConvLayer] {
        &self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Post-processing ops on the output of layer `i`.
    pub fn post_ops(&self, i: usize) -> &[PostOp] {
        &self.post_ops[i]
    }

    /// Whether the tensor between layer `i` and layer `i+1` is shared
    /// without rehashing (all post-ops fusable).
    pub fn is_coupled(&self, i: usize) -> bool {
        i + 1 < self.layers.len() && self.post_ops[i].iter().all(|op| op.is_fusable())
    }

    /// Split into segments at non-fusable post-processing ops (paper §4.3).
    ///
    /// ```
    /// use secureloop_workload::zoo;
    /// let net = zoo::alexnet_conv();
    /// // AlexNet conv1..conv5 has pools after conv1, conv2 and conv5:
    /// // segments are [conv1], [conv2], [conv3, conv4, conv5].
    /// let segs = net.segments();
    /// assert_eq!(segs.len(), 3);
    /// assert_eq!(segs[2].layers, vec![2, 3, 4]);
    /// ```
    pub fn segments(&self) -> Vec<Segment> {
        let mut segs = Vec::new();
        let mut cur = Vec::new();
        for i in 0..self.layers.len() {
            cur.push(i);
            if !self.is_coupled(i) {
                segs.push(Segment {
                    layers: std::mem::take(&mut cur),
                });
            }
        }
        if !cur.is_empty() {
            segs.push(Segment { layers: cur });
        }
        segs
    }

    /// Total MAC count over all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs()).sum()
    }

    /// A copy of the network with every layer at batch size `n`.
    pub fn with_batch(&self, n: u64) -> Network {
        Network {
            name: format!("{}@N{n}", self.name),
            layers: self.layers.iter().map(|l| l.with_batch(n)).collect(),
            post_ops: self.post_ops.clone(),
        }
    }

    /// A copy of the network with every layer at word width `bits`
    /// (e.g. 16 for an fp16 variant of an int8-quantised zoo entry).
    pub fn with_word_bits(&self, bits: u32) -> Network {
        Network {
            name: format!("{}@w{bits}", self.name),
            layers: self.layers.iter().map(|l| l.with_word_bits(bits)).collect(),
            post_ops: self.post_ops.clone(),
        }
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} layers)", self.name, self.layers.len())?;
        for (i, l) in self.layers.iter().enumerate() {
            write!(f, "  {l}")?;
            if !self.post_ops[i].is_empty() {
                write!(f, " ->")?;
                for op in &self.post_ops[i] {
                    write!(f, " {op}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ConvLayer;

    fn tiny(name: &str) -> ConvLayer {
        ConvLayer::builder(name)
            .input_hw(8, 8)
            .channels(4, 4)
            .kernel(3, 3)
            .pad(1)
            .build()
            .unwrap()
    }

    #[test]
    fn fusable_classification() {
        assert!(PostOp::Relu.is_fusable());
        assert!(PostOp::BatchNorm.is_fusable());
        assert!(PostOp::ZeroPad.is_fusable());
        assert!(!PostOp::MaxPool.is_fusable());
        assert!(!PostOp::ResidualAdd.is_fusable());
        assert!(!PostOp::Softmax.is_fusable());
        assert!(!PostOp::LayerNorm.is_fusable());
    }

    #[test]
    fn with_word_bits_scales_tensor_bits() {
        let mut net = Network::new("t");
        net.push(tiny("a"), &[PostOp::Relu]);
        let fp16 = net.with_word_bits(16);
        assert!(fp16.name().contains("@w16"));
        assert_eq!(fp16.layers()[0].word_bits(), 16);
        assert_eq!(fp16.total_macs(), net.total_macs());
        assert_eq!(
            fp16.layers()[0].tensor_bits(crate::Datatype::Weight),
            2 * net.layers()[0].tensor_bits(crate::Datatype::Weight)
        );
    }

    #[test]
    fn segments_split_at_boundaries() {
        let mut net = Network::new("t");
        net.push(tiny("a"), &[PostOp::Relu]);
        net.push(tiny("b"), &[PostOp::MaxPool]);
        net.push(tiny("c"), &[PostOp::Relu]);
        net.push(tiny("d"), &[]);
        let segs = net.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].layers, vec![0, 1]);
        assert_eq!(segs[1].layers, vec![2, 3]);
        assert!(net.is_coupled(0));
        assert!(!net.is_coupled(1));
        assert!(net.is_coupled(2));
        assert!(!net.is_coupled(3)); // last layer has no consumer
    }

    #[test]
    fn coupled_pairs_within_segment() {
        let seg = Segment {
            layers: vec![3, 4, 5],
        };
        let pairs: Vec<_> = seg.coupled_pairs().collect();
        assert_eq!(pairs, vec![(3, 4), (4, 5)]);
    }

    #[test]
    fn display_lists_layers() {
        let mut net = Network::new("t");
        net.push(tiny("a"), &[PostOp::Relu]);
        let s = net.to_string();
        assert!(s.contains("a:"));
        assert!(s.contains("relu"));
    }

    #[test]
    fn with_batch_scales_macs() {
        let mut net = Network::new("t");
        net.push(tiny("a"), &[PostOp::Relu]);
        net.push(tiny("b"), &[]);
        let b4 = net.with_batch(4);
        assert_eq!(b4.total_macs(), 4 * net.total_macs());
        assert!(b4.name().contains("@N4"));
        assert_eq!(b4.segments().len(), net.segments().len());
    }

    #[test]
    fn empty_network() {
        let net = Network::new("empty");
        assert!(net.is_empty());
        assert_eq!(net.segments().len(), 0);
        assert_eq!(net.total_macs(), 0);
    }
}
