//! The evaluation workloads of the paper (§5.1) — AlexNet's
//! convolutional front, ResNet-18, and MobileNetV2 — plus ResNet-50,
//! VGG-16, parametric MLP chains, and a modern zoo: transformer
//! attention blocks ([`attention`]), LLM-decode FC stacks
//! ([`llm_decode`]), ViT patch embedding ([`vit_tiny`]), dilated
//! context aggregation ([`dilated_context`]) and grouped ResNeXt
//! bottlenecks ([`resnext_stage`]). All batch 1 (see
//! [`Network::with_batch`]), 8-bit words (see
//! [`Network::with_word_bits`] for fp16 variants).
//!
//! [`alexnet_conv`] models the grouped convolutions of the original
//! AlexNet ungrouped, as is conventional in Timeloop-based
//! evaluations; [`alexnet_conv_grouped`] keeps the historical 2-way
//! grouping explicit. Residual branches are represented by
//! [`PostOp::ResidualAdd`] boundaries (see [`crate::graph`]).

use crate::graph::{Network, PostOp};
use crate::layer::ConvLayer;

fn conv(name: &str, hw: u64, cin: u64, cout: u64, k: u64, stride: u64, pad: u64) -> ConvLayer {
    ConvLayer::builder(name)
        .input_hw(hw, hw)
        .channels(cin, cout)
        .kernel(k, k)
        .stride(stride)
        .pad(pad)
        .build()
        .unwrap_or_else(|e| panic!("zoo layer {name}: {e}"))
}

fn dwconv(name: &str, hw: u64, ch: u64, stride: u64) -> ConvLayer {
    ConvLayer::builder(name)
        .input_hw(hw, hw)
        .channels(ch, ch)
        .kernel(3, 3)
        .stride(stride)
        .pad(1)
        .depthwise()
        .build()
        .unwrap_or_else(|e| panic!("zoo layer {name}: {e}"))
}

/// The first five (convolutional) layers of AlexNet, as evaluated in the
/// paper ("we only consider first 5 layers of AlexNet that are
/// convolutional", §5.1).
pub fn alexnet_conv() -> Network {
    let mut net = Network::new("AlexNet");
    net.push(
        conv("conv1", 227, 3, 96, 11, 4, 0),
        &[PostOp::Relu, PostOp::MaxPool],
    );
    net.push(
        conv("conv2", 27, 96, 256, 5, 1, 2),
        &[PostOp::Relu, PostOp::MaxPool],
    );
    net.push(conv("conv3", 13, 256, 384, 3, 1, 1), &[PostOp::Relu]);
    net.push(conv("conv4", 13, 384, 384, 3, 1, 1), &[PostOp::Relu]);
    net.push(
        conv("conv5", 13, 384, 256, 3, 1, 1),
        &[PostOp::Relu, PostOp::MaxPool],
    );
    net
}

/// ResNet-18 at 224×224. The elementwise residual additions terminate
/// segments; 1×1 downsample convolutions are scheduled as their own
/// segments.
pub fn resnet18() -> Network {
    let mut net = Network::new("ResNet18");
    net.push(
        conv("conv1", 224, 3, 64, 7, 2, 3),
        &[PostOp::BatchNorm, PostOp::Relu, PostOp::MaxPool],
    );

    // (stage, channels, input hw, downsample?)
    let stages: [(u64, u64, bool); 4] = [
        (64, 56, false),
        (128, 28, true),
        (256, 14, true),
        (512, 7, true),
    ];
    let mut cin = 64;
    for (si, &(ch, hw, down)) in stages.iter().enumerate() {
        let s = si + 1;
        for b in 1..=2u32 {
            let first_stride = if b == 1 && down { 2 } else { 1 };
            let in_hw = if b == 1 && down { hw * 2 } else { hw };
            let bc = if b == 1 { cin } else { ch };
            net.push(
                conv(&format!("l{s}b{b}c1"), in_hw, bc, ch, 3, first_stride, 1),
                &[PostOp::BatchNorm, PostOp::Relu],
            );
            net.push(
                conv(&format!("l{s}b{b}c2"), hw, ch, ch, 3, 1, 1),
                &[PostOp::BatchNorm, PostOp::ResidualAdd],
            );
            if b == 1 && down {
                // Projection shortcut: separate segment on both sides.
                net.push(
                    conv(&format!("l{s}ds"), hw * 2, cin, ch, 1, 2, 0),
                    &[PostOp::BatchNorm, PostOp::ResidualAdd],
                );
            }
        }
        cin = ch;
    }
    net.push(
        ConvLayer::builder("fc")
            .channels(512, 1000)
            .build()
            .expect("fc"),
        &[],
    );
    net
}

/// MobileNetV2 at 224×224, width multiplier 1.0 (52 convolutions + final
/// classifier). Inverted-residual blocks whose input and output shapes
/// match end in a [`PostOp::ResidualAdd`] boundary; all other transitions
/// are BatchNorm/ReLU6 and stay fusable, which is what makes MobileNetV2
/// the workload with the longest coupled chains (paper §5.1).
pub fn mobilenet_v2() -> Network {
    let mut net = Network::new("MobilenetV2");
    net.push(
        conv("conv0", 224, 3, 32, 3, 2, 1),
        &[PostOp::BatchNorm, PostOp::Relu],
    );

    // (expansion t, cout, repeats, first stride)
    let cfg: [(u64, u64, u32, u64); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut cin: u64 = 32;
    let mut hw: u64 = 112;
    let mut blk = 0u32;
    for &(t, cout, n, first_stride) in &cfg {
        for r in 0..n {
            blk += 1;
            let stride = if r == 0 { first_stride } else { 1 };
            let residual = stride == 1 && cin == cout;
            let hidden = cin * t;
            if t != 1 {
                net.push(
                    conv(&format!("b{blk}_expand"), hw, cin, hidden, 1, 1, 0),
                    &[PostOp::BatchNorm, PostOp::Relu],
                );
            }
            net.push(
                dwconv(&format!("b{blk}_dw"), hw, hidden, stride),
                &[PostOp::BatchNorm, PostOp::Relu],
            );
            hw /= stride;
            let proj_post: &[PostOp] = if residual {
                &[PostOp::BatchNorm, PostOp::ResidualAdd]
            } else {
                &[PostOp::BatchNorm]
            };
            net.push(
                conv(&format!("b{blk}_project"), hw, hidden, cout, 1, 1, 0),
                proj_post,
            );
            cin = cout;
        }
    }
    net.push(
        conv("conv_last", 7, 320, 1280, 1, 1, 0),
        &[PostOp::BatchNorm, PostOp::Relu, PostOp::AvgPool],
    );
    net.push(
        ConvLayer::builder("fc")
            .channels(1280, 1000)
            .build()
            .expect("fc"),
        &[],
    );
    net
}

/// ResNet-50 at 224×224: bottleneck blocks (1×1 reduce, 3×3, 1×1
/// expand ×4) in stages of 3/4/6/3, with projection shortcuts at every
/// stage entry. 53 convolutions + classifier.
pub fn resnet50() -> Network {
    let mut net = Network::new("ResNet50");
    net.push(
        conv("conv1", 224, 3, 64, 7, 2, 3),
        &[PostOp::BatchNorm, PostOp::Relu, PostOp::MaxPool],
    );
    // (blocks, bottleneck width, output hw)
    let stages: [(u32, u64, u64); 4] = [(3, 64, 56), (4, 128, 28), (6, 256, 14), (3, 512, 7)];
    let mut cin: u64 = 64;
    for (si, &(blocks, width, hw)) in stages.iter().enumerate() {
        let s = si + 1;
        let cout = width * 4;
        for b in 1..=blocks {
            let first = b == 1;
            let stride = if first && s > 1 { 2 } else { 1 };
            let in_hw = if stride == 2 { hw * 2 } else { hw };
            net.push(
                conv(&format!("l{s}b{b}c1"), in_hw, cin, width, 1, 1, 0),
                &[PostOp::BatchNorm, PostOp::Relu],
            );
            net.push(
                conv(&format!("l{s}b{b}c2"), in_hw, width, width, 3, stride, 1),
                &[PostOp::BatchNorm, PostOp::Relu],
            );
            net.push(
                conv(&format!("l{s}b{b}c3"), hw, width, cout, 1, 1, 0),
                &[PostOp::BatchNorm, PostOp::ResidualAdd],
            );
            if first {
                net.push(
                    conv(&format!("l{s}ds"), in_hw, cin, cout, 1, stride, 0),
                    &[PostOp::BatchNorm, PostOp::ResidualAdd],
                );
            }
            cin = cout;
        }
    }
    net.push(
        ConvLayer::builder("fc")
            .channels(2048, 1000)
            .build()
            .expect("fc"),
        &[],
    );
    net
}

/// VGG-16 at 224×224: 13 convolutions in five pooled blocks plus the
/// three-layer classifier. Not part of the paper's evaluation set, but
/// the canonical high-reuse workload for DSE users (its long
/// same-resolution conv chains form deep coupled segments).
pub fn vgg16() -> Network {
    let mut net = Network::new("VGG16");
    // (convs in block, channels, input hw)
    let blocks: [(u32, u64, u64); 5] = [
        (2, 64, 224),
        (2, 128, 112),
        (3, 256, 56),
        (3, 512, 28),
        (3, 512, 14),
    ];
    let mut cin = 3;
    for (bi, &(n, ch, hw)) in blocks.iter().enumerate() {
        for c in 1..=n {
            let last = c == n;
            let post: &[PostOp] = if last {
                &[PostOp::Relu, PostOp::MaxPool]
            } else {
                &[PostOp::Relu]
            };
            net.push(
                conv(&format!("b{}c{}", bi + 1, c), hw, cin, ch, 3, 1, 1),
                post,
            );
            cin = ch;
        }
    }
    net.push(
        ConvLayer::builder("fc6")
            .channels(512 * 7 * 7, 4096)
            .build()
            .expect("fc6"),
        &[PostOp::Relu],
    );
    net.push(
        ConvLayer::builder("fc7")
            .channels(4096, 4096)
            .build()
            .expect("fc7"),
        &[PostOp::Relu],
    );
    net.push(
        ConvLayer::builder("fc8")
            .channels(4096, 1000)
            .build()
            .expect("fc8"),
        &[],
    );
    net
}

/// A fully-connected chain (`depth` layers of `width → width`), the
/// matrix-multiply-only workload shape of transformer feed-forward
/// stacks. Exercises the FC path of the AuthBlock engine: coupled
/// tensors are channel vectors rather than feature-map planes.
pub fn mlp(depth: usize, width: u64) -> Network {
    assert!(depth > 0 && width > 0, "mlp needs positive depth and width");
    let mut net = Network::new(format!("MLP-{depth}x{width}"));
    for i in 0..depth {
        let post: &[PostOp] = if i + 1 < depth { &[PostOp::Relu] } else { &[] };
        net.push(
            ConvLayer::builder(format!("fc{i}"))
                .channels(width, width)
                .build()
                .expect("fc layer"),
            post,
        );
    }
    net
}

/// A token-wise projection (`d_in → d_out` applied at every one of
/// `seq` positions), expressed as a 1×1 convolution over a `seq × 1`
/// feature map: the token axis becomes the spatial `P` dimension, so
/// off-chip AuthBlock regions are tall-and-skinny `seq × 1` planes —
/// the attention-shaped geometry the congruence solver must handle.
fn token_proj(name: &str, seq: u64, d_in: u64, d_out: u64) -> ConvLayer {
    ConvLayer::builder(name)
        .input_hw(seq, 1)
        .channels(d_in, d_out)
        .kernel(1, 1)
        .build()
        .unwrap_or_else(|e| panic!("zoo layer {name}: {e}"))
}

/// Push one transformer encoder block onto `net`: Q/K/V projections
/// (each feeding the attention matmul — a separate pass, so a
/// [`PostOp::Softmax`] boundary), the output projection
/// ([`PostOp::LayerNorm`] boundary, which also stands in for the
/// residual add), and the two feed-forward projections (`d → 4d → d`)
/// whose activation keeps them a coupled FC pair.
fn push_attention_block(net: &mut Network, prefix: &str, seq: u64, d_model: u64) {
    for proj in ["q", "k", "v"] {
        net.push(
            token_proj(&format!("{prefix}{proj}_proj"), seq, d_model, d_model),
            &[PostOp::Softmax],
        );
    }
    net.push(
        token_proj(&format!("{prefix}out_proj"), seq, d_model, d_model),
        &[PostOp::LayerNorm],
    );
    net.push(
        token_proj(&format!("{prefix}ffn_up"), seq, d_model, 4 * d_model),
        &[PostOp::Relu],
    );
    net.push(
        token_proj(&format!("{prefix}ffn_down"), seq, 4 * d_model, d_model),
        &[PostOp::LayerNorm],
    );
}

/// One transformer encoder block over `seq` tokens of width `d_model`
/// (six projection layers; see [`push_attention_block`] for the
/// boundary structure). `attention(128, 512)` is a BERT-base-shaped
/// block at half width.
pub fn attention(seq: u64, d_model: u64) -> Network {
    assert!(
        seq > 0 && d_model > 0,
        "attention needs positive seq and d_model"
    );
    let mut net = Network::new(format!("Attention-{seq}x{d_model}"));
    push_attention_block(&mut net, "", seq, d_model);
    net
}

/// Single-token LLM decode: the same six projections as [`attention`]
/// but with `seq = 1`, i.e. pure GEMV FC layers (`P = Q = R = S = 1`,
/// the paper's §2.1 FC encoding). The weight tensors dominate every
/// tile — the bandwidth-bound regime of autoregressive decoding.
pub fn llm_decode(d_model: u64) -> Network {
    assert!(d_model > 0, "llm_decode needs positive d_model");
    let fc = |name: &str, cin: u64, cout: u64| {
        ConvLayer::builder(name)
            .channels(cin, cout)
            .build()
            .unwrap_or_else(|e| panic!("zoo layer {name}: {e}"))
    };
    let mut net = Network::new(format!("LLMDecode-{d_model}"));
    for proj in ["q", "k", "v"] {
        net.push(
            fc(&format!("{proj}_proj"), d_model, d_model),
            &[PostOp::Softmax],
        );
    }
    net.push(fc("out_proj", d_model, d_model), &[PostOp::LayerNorm]);
    net.push(fc("ffn_up", d_model, 4 * d_model), &[PostOp::Relu]);
    net.push(fc("ffn_down", 4 * d_model, d_model), &[PostOp::LayerNorm]);
    net
}

/// ViT-Tiny front: 16×16 patch embedding of a 224×224 RGB image into
/// 192 channels (a stride-16 conv producing a 14×14 token grid),
/// followed by `blocks` encoder blocks over the 196-token sequence.
pub fn vit_tiny(blocks: u32) -> Network {
    assert!(blocks > 0, "vit_tiny needs at least one encoder block");
    let d = 192;
    let mut net = Network::new(format!("ViT-Tiny-{blocks}b"));
    net.push(
        ConvLayer::builder("patch_embed")
            .input_hw(224, 224)
            .channels(3, d)
            .kernel(16, 16)
            .stride(16)
            .build()
            .expect("patch_embed"),
        &[PostOp::LayerNorm],
    );
    let seq = 14 * 14;
    for b in 1..=blocks {
        push_attention_block(&mut net, &format!("b{b}_"), seq, d);
    }
    net
}

/// A DeepLab-style context-aggregation head: a stack of 3×3
/// convolutions at exponentially growing dilation (1, 2, 4, …), each
/// padded to preserve resolution. Dilation spreads every tile's halo
/// across `2·dilation` extra rows, stressing the overlap counting.
pub fn dilated_context(hw: u64, channels: u64, depth: u32) -> Network {
    assert!(
        hw > 0 && channels > 0 && depth > 0,
        "dilated_context needs positive hw, channels and depth"
    );
    let mut net = Network::new(format!("DilatedCtx-{hw}x{channels}x{depth}"));
    let mut cin = 3;
    for i in 0..depth {
        let dilation = 1u64 << i.min(4);
        net.push(
            ConvLayer::builder(format!("ctx{i}_d{dilation}"))
                .input_hw(hw, hw)
                .channels(cin, channels)
                .kernel(3, 3)
                .pad(dilation)
                .dilation(dilation)
                .build()
                .unwrap_or_else(|e| panic!("zoo layer ctx{i}: {e}")),
            &[PostOp::BatchNorm, PostOp::Relu],
        );
        cin = channels;
    }
    net
}

/// One ResNeXt stage: `blocks` bottlenecks of 1×1 reduce → grouped
/// 3×3 (cardinality `groups`) → 1×1 expand, at resolution `hw` with
/// bottleneck width `width` and output width `4·width`.
pub fn resnext_stage(hw: u64, width: u64, groups: u64, blocks: u32) -> Network {
    assert!(
        hw > 0 && width > 0 && groups > 0 && blocks > 0,
        "resnext_stage needs positive parameters"
    );
    let cout = 4 * width;
    let mut net = Network::new(format!("ResNeXtStage-{hw}x{width}g{groups}"));
    let mut cin = width * 2;
    for b in 1..=blocks {
        net.push(
            conv(&format!("b{b}c1"), hw, cin, width, 1, 1, 0),
            &[PostOp::BatchNorm, PostOp::Relu],
        );
        net.push(
            ConvLayer::builder(format!("b{b}c2"))
                .input_hw(hw, hw)
                .channels(width, width)
                .kernel(3, 3)
                .pad(1)
                .groups(groups)
                .build()
                .unwrap_or_else(|e| panic!("zoo layer b{b}c2: {e}")),
            &[PostOp::BatchNorm, PostOp::Relu],
        );
        net.push(
            conv(&format!("b{b}c3"), hw, width, cout, 1, 1, 0),
            &[PostOp::BatchNorm, PostOp::ResidualAdd],
        );
        cin = cout;
    }
    net
}

/// The first five layers of AlexNet with the *historical* 2-way
/// grouping on conv2/conv4/conv5 (the dual-GPU split of the original
/// network), in contrast to [`alexnet_conv`]'s conventional ungrouped
/// modelling. Grouping halves those layers' weights and MACs.
pub fn alexnet_conv_grouped() -> Network {
    let grouped = |name: &str, hw: u64, cin: u64, cout: u64, k: u64, pad: u64| {
        ConvLayer::builder(name)
            .input_hw(hw, hw)
            .channels(cin, cout)
            .kernel(k, k)
            .pad(pad)
            .groups(2)
            .build()
            .unwrap_or_else(|e| panic!("zoo layer {name}: {e}"))
    };
    let mut net = Network::new("AlexNet-grouped");
    net.push(
        conv("conv1", 227, 3, 96, 11, 4, 0),
        &[PostOp::Relu, PostOp::MaxPool],
    );
    net.push(
        grouped("conv2", 27, 96, 256, 5, 2),
        &[PostOp::Relu, PostOp::MaxPool],
    );
    net.push(conv("conv3", 13, 256, 384, 3, 1, 1), &[PostOp::Relu]);
    net.push(grouped("conv4", 13, 384, 384, 3, 1), &[PostOp::Relu]);
    net.push(
        grouped("conv5", 13, 384, 256, 3, 1),
        &[PostOp::Relu, PostOp::MaxPool],
    );
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::{Datatype, Dim};

    #[test]
    fn alexnet_has_five_convs_three_segments() {
        let net = alexnet_conv();
        assert_eq!(net.len(), 5);
        let segs = net.segments();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[2].layers, vec![2, 3, 4]);
        // Published AlexNet conv MAC count is ~0.65 GMACs for ungrouped
        // conv2/4/5 variants; sanity-check the order of magnitude.
        let g = net.total_macs() as f64 / 1e9;
        assert!(g > 0.5 && g < 1.3, "AlexNet GMACs = {g}");
    }

    #[test]
    fn alexnet_conv2_consumes_pooled_fmap() {
        let net = alexnet_conv();
        let conv2 = &net.layers()[1];
        assert_eq!(conv2.ifmap_height(), 27);
        assert_eq!(conv2.dim(Dim::P), 27);
    }

    #[test]
    fn resnet18_structure() {
        let net = resnet18();
        // 1 stem + 16 block convs + 3 downsamples + 1 fc = 21.
        assert_eq!(net.len(), 21);
        // Every residual add must split a segment: no segment crosses an add.
        for seg in net.segments() {
            for &i in &seg.layers[..seg.layers.len() - 1] {
                assert!(net.post_ops(i).iter().all(|op| op.is_fusable()));
            }
        }
        // Published ResNet-18 is ~1.8 GMACs.
        let g = net.total_macs() as f64 / 1e9;
        assert!(g > 1.5 && g < 2.1, "ResNet18 GMACs = {g}");
    }

    #[test]
    fn resnet18_spatial_chain_is_consistent() {
        let net = resnet18();
        // l2b1c1 halves 56 -> 28.
        let l = net.layers().iter().find(|l| l.name() == "l2b1c1").unwrap();
        // Effective (fetched) ifmap height: floor division leaves one
        // nominal input row unread.
        assert_eq!(l.ifmap_height(), 55);
        assert_eq!(l.dim(Dim::P), 28);
        let ds = net.layers().iter().find(|l| l.name() == "l2ds").unwrap();
        assert_eq!(ds.dim(Dim::P), 28);
        assert_eq!(ds.dim(Dim::R), 1);
    }

    #[test]
    fn mobilenet_v2_structure() {
        let net = mobilenet_v2();
        // conv0 + blocks(2 + 16*3) + conv_last + fc = 1 + 50 + 1 + 1 = 53.
        assert_eq!(net.len(), 53);
        // Published MobileNetV2 is ~0.3 GMACs.
        let g = net.total_macs() as f64 / 1e9;
        assert!(g > 0.25 && g < 0.40, "MobileNetV2 GMACs = {g}");
        // Depthwise layers present and marked.
        let dw = net.layers().iter().filter(|l| l.depthwise()).count();
        assert_eq!(dw, 17);
        // Final feature map is 7x7x1280.
        let last = net
            .layers()
            .iter()
            .find(|l| l.name() == "conv_last")
            .unwrap();
        assert_eq!(last.dim(Dim::P), 7);
        assert_eq!(last.dim(Dim::M), 1280);
        assert_eq!(last.tensor_elems(Datatype::Ofmap), 7 * 7 * 1280);
    }

    #[test]
    fn mobilenet_v2_has_long_coupled_chains() {
        let net = mobilenet_v2();
        let longest = net
            .segments()
            .into_iter()
            .map(|s| s.layers.len())
            .max()
            .unwrap();
        // Stride-2 / channel-changing blocks chain together without
        // boundaries, giving the deep coupled runs the paper exploits.
        assert!(longest >= 6, "longest segment = {longest}");
    }

    #[test]
    fn mobilenet_residual_blocks_end_segments() {
        let net = mobilenet_v2();
        let adds = (0..net.len())
            .filter(|&i| net.post_ops(i).contains(&PostOp::ResidualAdd))
            .count();
        // Residual blocks: 1 (c24) + 2 (c32) + 3 (c64) + 2 (c96) + 2 (c160) = 10.
        assert_eq!(adds, 10);
    }

    #[test]
    fn resnet50_structure() {
        let net = resnet50();
        // 1 stem + 16 blocks x 3 + 4 downsamples + 1 fc = 54.
        assert_eq!(net.len(), 54);
        // Published ResNet-50 is ~4.1 GMACs.
        let g = net.total_macs() as f64 / 1e9;
        assert!(g > 3.5 && g < 4.6, "ResNet50 GMACs = {g}");
        // Bottleneck expansion: final features are 2048-wide.
        let last = net.layers().iter().find(|l| l.name() == "l4b3c3").unwrap();
        assert_eq!(last.dim(Dim::M), 2048);
        assert_eq!(last.dim(Dim::P), 7);
    }

    #[test]
    fn vgg16_structure() {
        let net = vgg16();
        assert_eq!(net.len(), 16);
        // Conv MACs ~15.3 G; fc adds ~0.12 G.
        let g = net.total_macs() as f64 / 1e9;
        assert!(g > 14.0 && g < 17.0, "VGG16 GMACs = {g}");
        // Five pool boundaries then the fused fc chain = 6 segments.
        assert_eq!(net.segments().len(), 6);
        // Deep coupled chains inside blocks 3-5.
        let longest = net.segments().iter().map(|s| s.layers.len()).max().unwrap();
        assert!(longest >= 3);
    }

    #[test]
    fn mlp_is_a_coupled_fc_chain() {
        let net = mlp(4, 1024);
        assert_eq!(net.len(), 4);
        assert_eq!(net.segments().len(), 1, "ReLU keeps the chain fusable");
        for l in net.layers() {
            assert_eq!(l.dim(Dim::P), 1);
            assert_eq!(l.macs(), 1024 * 1024);
        }
    }

    #[test]
    #[should_panic(expected = "positive depth")]
    fn empty_mlp_rejected() {
        let _ = mlp(0, 128);
    }

    #[test]
    fn attention_block_structure() {
        let net = attention(128, 512);
        assert_eq!(net.len(), 6);
        // q/k/v/out each end a segment; ffn_up+ffn_down stay coupled.
        let segs = net.segments();
        assert_eq!(segs.len(), 5);
        assert_eq!(segs[4].layers, vec![4, 5]);
        // Token axis is spatial: tall-and-skinny off-chip planes.
        let q = &net.layers()[0];
        assert_eq!(q.dim(Dim::P), 128);
        assert_eq!(q.dim(Dim::Q), 1);
        assert_eq!(q.dim(Dim::C), 512);
        assert_eq!(q.ifmap_height(), 128);
        // 6 projections: 4 of d·d + up/down of 4d² each = 12·d² weights.
        let w: u64 = net
            .layers()
            .iter()
            .map(|l| l.tensor_elems(Datatype::Weight))
            .sum();
        assert_eq!(w, 12 * 512 * 512);
        assert_eq!(net.total_macs(), 128 * w);
    }

    #[test]
    fn llm_decode_is_pure_fc() {
        let net = llm_decode(1024);
        assert_eq!(net.len(), 6);
        for l in net.layers() {
            assert_eq!(l.dim(Dim::P), 1);
            assert_eq!(l.dim(Dim::Q), 1);
            assert_eq!(l.dim(Dim::R), 1);
            // GEMV: one MAC per weight.
            assert_eq!(l.macs(), l.tensor_elems(Datatype::Weight));
        }
        // fp16 variant doubles the weight bits, not the MACs.
        let fp16 = net.with_word_bits(16);
        assert_eq!(fp16.total_macs(), net.total_macs());
        assert_eq!(
            fp16.layers()[0].tensor_bits(Datatype::Weight),
            2 * net.layers()[0].tensor_bits(Datatype::Weight)
        );
    }

    #[test]
    fn vit_tiny_patch_embedding_makes_tokens() {
        let net = vit_tiny(2);
        assert_eq!(net.len(), 1 + 2 * 6);
        let patch = &net.layers()[0];
        // 224/16 = 14×14 token grid, 192 channels.
        assert_eq!(patch.dim(Dim::P), 14);
        assert_eq!(patch.dim(Dim::Q), 14);
        assert_eq!(patch.dim(Dim::M), 192);
        assert_eq!(patch.dim(Dim::R), 16);
        assert_eq!(patch.stride(), 16);
        // Patch embedding is a boundary (LayerNorm): its own segment.
        assert_eq!(net.segments()[0].layers, vec![0]);
        // Encoder projections run over the 196-token sequence.
        let q = &net.layers()[1];
        assert_eq!(q.dim(Dim::P), 196);
        assert_eq!(q.dim(Dim::Q), 1);
    }

    #[test]
    fn dilated_context_preserves_resolution() {
        let net = dilated_context(56, 64, 4);
        assert_eq!(net.len(), 4);
        for (i, l) in net.layers().iter().enumerate() {
            assert_eq!(l.dilation(), 1 << i, "{}", l.name());
            assert_eq!(l.dim(Dim::P), 56, "{}", l.name());
            assert_eq!(l.dim(Dim::Q), 56, "{}", l.name());
        }
        // One fully-fusable chain: BatchNorm/ReLU throughout.
        assert_eq!(net.segments().len(), 1);
    }

    #[test]
    fn resnext_stage_grouping() {
        let net = resnext_stage(28, 128, 32, 2);
        assert_eq!(net.len(), 6);
        let g = net.layers().iter().find(|l| l.name() == "b1c2").unwrap();
        assert_eq!(g.groups(), 32);
        assert_eq!(g.dim(Dim::C), 128 / 32);
        assert_eq!(g.ifmap_channels(), 128);
        // Grouped 3×3 has 32× fewer weights than its dense equivalent.
        assert_eq!(g.tensor_elems(Datatype::Weight), 128 * 4 * 9);
        // Residual adds split each block.
        assert_eq!(net.segments().len(), 2);
    }

    #[test]
    fn grouped_alexnet_halves_grouped_layer_macs() {
        let dense = alexnet_conv();
        let grouped = alexnet_conv_grouped();
        assert_eq!(grouped.len(), dense.len());
        for (d, g) in dense.layers().iter().zip(grouped.layers()) {
            match g.name() {
                "conv2" | "conv4" | "conv5" => {
                    assert_eq!(g.groups(), 2);
                    assert_eq!(2 * g.macs(), d.macs(), "{}", g.name());
                    assert_eq!(
                        2 * g.tensor_elems(Datatype::Weight),
                        d.tensor_elems(Datatype::Weight)
                    );
                    // Same activations either way.
                    assert_eq!(
                        g.tensor_elems(Datatype::Ifmap),
                        d.tensor_elems(Datatype::Ifmap)
                    );
                    assert_eq!(
                        g.tensor_elems(Datatype::Ofmap),
                        d.tensor_elems(Datatype::Ofmap)
                    );
                }
                _ => {
                    assert_eq!(g.groups(), 1);
                    assert_eq!(g.macs(), d.macs());
                }
            }
        }
        // Historical grouped AlexNet: ~0.58 of the ungrouped MACs.
        assert!(grouped.total_macs() < dense.total_macs());
    }

    #[test]
    fn all_zoo_layers_have_positive_dims() {
        for net in [
            alexnet_conv(),
            alexnet_conv_grouped(),
            resnet18(),
            mobilenet_v2(),
            vgg16(),
            mlp(3, 256),
            attention(64, 256),
            llm_decode(512),
            vit_tiny(1),
            dilated_context(28, 32, 3),
            resnext_stage(14, 64, 16, 1),
        ] {
            for l in net.layers() {
                assert!(l.macs() > 0, "{}", l.name());
                for dt in Datatype::ALL {
                    assert!(l.tensor_elems(dt) > 0);
                }
            }
        }
    }
}
