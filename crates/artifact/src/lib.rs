#![warn(missing_docs)]

//! Durable artifact layer for the SecureLoop reproduction.
//!
//! Every artifact the pipeline persists (sweep checkpoints, the
//! candidate cache, the service journal, telemetry traces, committed
//! bench baselines) used to be written with bare `fs::write` + rename
//! and read with an all-or-nothing parser. This crate replaces those
//! hand-copied routines with one shared path:
//!
//! * **Envelope** — [`seal`] appends a one-line footer carrying the
//!   payload byte length and an FNV-1a 64 checksum; [`open`] verifies
//!   it and classifies the artifact as [`Integrity::Verified`],
//!   [`Integrity::Legacy`] (pre-envelope file, no footer), or
//!   [`Integrity::Damaged`].
//! * **Durable writes** — [`write_durable`] does temp-write →
//!   fsync(temp) → rotate the previous generation to `.bak` → rename →
//!   fsync(parent dir), with exponential-backoff retries governed by a
//!   [`DurabilityPolicy`]. Rename alone is not power-loss durable;
//!   the fsyncs are what make the rename stick.
//! * **Salvage loads** — [`load_recoverable`] walks a ladder (primary
//!   strict → primary salvage → `.bak` strict → `.bak` salvage) and
//!   reports what it did as warnings instead of discarding state. The
//!   raw-text scanners ([`salvage_array_items`] and friends) let
//!   loaders recover intact records from a torn tail without trusting
//!   the damaged region.
//! * **Failure injection** — [`crash_point`] hooks let tests abort the
//!   process between any two steps of the write path, and [`fault`]
//!   injects deterministic I/O errors with a budget (transient) or
//!   without one (ENOSPC-style persistent failure).
//!
//! The crate is dependency-free on purpose: it sits below
//! `secureloop-json` in the stack so every persistence site can use it.

use std::fmt;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Marker that starts an envelope footer line.
pub const FOOTER_PREFIX: &str = "//#secureloop-artifact";

/// Envelope format version emitted by [`seal`].
pub const ENVELOPE_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed artifact persistence error; every variant names the path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// An I/O operation failed (create, write, fsync, rename, read).
    Io {
        /// The artifact path involved.
        path: String,
        /// Which operation failed (`"write"`, `"fsync"`, `"rename"`, ...).
        op: &'static str,
        /// The underlying OS error text.
        message: String,
    },
    /// The file exists but holds zero bytes — a crash landed between
    /// create and write. Treated as absent-with-warning by loaders.
    Empty {
        /// The artifact path involved.
        path: String,
    },
    /// The contents could not be understood even after salvage and the
    /// `.bak` fallback.
    Corrupt {
        /// The artifact path involved.
        path: String,
        /// What went wrong, including the salvage ladder's findings.
        message: String,
    },
}

impl ArtifactError {
    /// The artifact path this error is about.
    pub fn path(&self) -> &str {
        match self {
            ArtifactError::Io { path, .. }
            | ArtifactError::Empty { path }
            | ArtifactError::Corrupt { path, .. } => path,
        }
    }

    /// True for the 0-byte-file case loaders treat as absent.
    pub fn is_empty(&self) -> bool {
        matches!(self, ArtifactError::Empty { .. })
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io { path, op, message } => {
                write!(f, "artifact '{path}': {op} failed: {message}")
            }
            ArtifactError::Empty { path } => {
                write!(f, "artifact '{path}' is empty (0 bytes)")
            }
            ArtifactError::Corrupt { path, message } => {
                write!(f, "artifact '{path}' is corrupt: {message}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

// ---------------------------------------------------------------------------
// Envelope
// ---------------------------------------------------------------------------

/// What [`open`] concluded about an artifact's envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Integrity {
    /// Footer present, length and checksum both match.
    Verified,
    /// No footer at all — a pre-envelope artifact. Accepted silently.
    Legacy,
    /// A footer (or something that looks like one) is present but the
    /// artifact fails verification; the reason is carried along.
    Damaged(String),
}

/// Append the envelope footer to `payload`.
///
/// The footer records the exact payload byte length and its FNV-1a 64
/// checksum, so [`open`] can recover the payload byte-for-byte and
/// detect truncation, bit-rot, and torn writes.
pub fn seal(payload: &str) -> String {
    let sum = fnv1a64(payload.as_bytes());
    let sep = if payload.is_empty() || payload.ends_with('\n') {
        ""
    } else {
        "\n"
    };
    format!(
        "{payload}{sep}{FOOTER_PREFIX} v{ENVELOPE_VERSION} len={} fnv1a={sum:016x}\n",
        payload.len()
    )
}

/// Split `text` into payload and [`Integrity`].
///
/// Files without a footer are [`Integrity::Legacy`] and returned whole;
/// a present-but-failing footer is [`Integrity::Damaged`] and the
/// payload returned is the region the footer claims (clamped to the
/// file), which is what the salvage scanners should work on.
pub fn open(text: &str) -> (&str, Integrity) {
    let Some(footer_start) = find_footer(text) else {
        return (text, Integrity::Legacy);
    };
    let footer_line = text[footer_start..].lines().next().unwrap_or("");
    let after = &text[footer_start + footer_line.len()..];
    let Some((len, sum)) = parse_footer(footer_line) else {
        return (
            &text[..footer_start],
            Integrity::Damaged(format!("malformed envelope footer '{footer_line}'")),
        );
    };
    if !after.trim().is_empty() {
        return (
            &text[..footer_start],
            Integrity::Damaged("trailing data after envelope footer".to_string()),
        );
    }
    if len > footer_start {
        // Footer claims more payload than the file holds: truncated.
        return (
            &text[..footer_start],
            Integrity::Damaged(format!(
                "payload truncated: footer claims {len} bytes, {footer_start} present"
            )),
        );
    }
    let payload = &text[..len];
    if !text[len..footer_start].trim().is_empty() {
        return (
            payload,
            Integrity::Damaged(
                "payload length mismatch: data between payload end and footer".to_string(),
            ),
        );
    }
    let actual = fnv1a64(payload.as_bytes());
    if actual != sum {
        return (
            payload,
            Integrity::Damaged(format!(
                "checksum mismatch: footer fnv1a={sum:016x}, payload fnv1a={actual:016x}"
            )),
        );
    }
    (payload, Integrity::Verified)
}

/// Byte offset of the footer line start, if a footer is present.
///
/// Prefers the last occurrence at a line start (the footer `seal`
/// writes). If none exists but the marker appears mid-line, that still
/// counts: legacy files never contain the marker, so a glued-together
/// footer means truncation ate the separating newline — better to
/// report Damaged than to pass the torn payload off as Legacy.
fn find_footer(text: &str) -> Option<usize> {
    let mut end = text.len();
    loop {
        match text[..end].rfind(FOOTER_PREFIX) {
            Some(idx) if idx == 0 || text.as_bytes()[idx - 1] == b'\n' => return Some(idx),
            Some(idx) => end = idx,
            None => break,
        }
    }
    text.rfind(FOOTER_PREFIX)
}

fn parse_footer(line: &str) -> Option<(usize, u64)> {
    let rest = line.strip_prefix(FOOTER_PREFIX)?.trim();
    let mut len = None;
    let mut sum = None;
    let mut version_ok = false;
    for tok in rest.split_whitespace() {
        if let Some(v) = tok.strip_prefix('v') {
            version_ok = v.parse::<u32>().is_ok();
        } else if let Some(v) = tok.strip_prefix("len=") {
            len = v.parse::<usize>().ok();
        } else if let Some(v) = tok.strip_prefix("fnv1a=") {
            sum = u64::from_str_radix(v, 16).ok();
        }
    }
    if !version_ok {
        return None;
    }
    Some((len?, sum?))
}

// ---------------------------------------------------------------------------
// Durability policy
// ---------------------------------------------------------------------------

/// How hard [`write_durable`] tries to make a write stick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityPolicy {
    /// fsync the temp file and the parent directory (`full`). Turning
    /// this off (`fast`) keeps the atomic-rename + checksum + backup
    /// behaviour but skips the flushes.
    pub fsync: bool,
    /// How many times to retry the whole write after a failure.
    pub retries: u32,
    /// Base backoff; attempt `n` sleeps `backoff << n` before retrying.
    pub backoff: Duration,
}

impl Default for DurabilityPolicy {
    fn default() -> Self {
        DurabilityPolicy {
            fsync: true,
            retries: 3,
            backoff: Duration::from_millis(10),
        }
    }
}

impl DurabilityPolicy {
    /// The `full` policy: fsync on (default).
    pub fn full() -> Self {
        DurabilityPolicy::default()
    }

    /// The `fast` policy: atomic rename + checksum + backup, no fsync.
    pub fn fast() -> Self {
        DurabilityPolicy {
            fsync: false,
            ..DurabilityPolicy::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Crash points
// ---------------------------------------------------------------------------

/// Named points the durable write path passes through, in order.
pub const CRASH_POINTS: &[&str] = &[
    "after-temp-write",
    "after-temp-fsync",
    "after-backup",
    "after-rename",
];

struct CrashPlan {
    point: String,
    nth: u64,
}

static CRASH_PLAN: OnceLock<Option<CrashPlan>> = OnceLock::new();
static CRASH_HITS: AtomicU64 = AtomicU64::new(0);

fn crash_plan() -> &'static Option<CrashPlan> {
    CRASH_PLAN.get_or_init(|| {
        let spec = std::env::var("SECURELOOP_CRASH_POINT").ok()?;
        let (point, nth) = match spec.split_once('@') {
            Some((p, n)) => (p.to_string(), n.parse().unwrap_or(1)),
            None => (spec, 1),
        };
        Some(CrashPlan { point, nth })
    })
}

/// Kill-injection hook: aborts the process when `name` matches the
/// `SECURELOOP_CRASH_POINT=<point>[@nth]` environment plan. A no-op in
/// normal operation; `abort()` (not `exit`) so destructors and buffered
/// flushes do not soften the crash.
pub fn crash_point(name: &str) {
    if let Some(plan) = crash_plan() {
        if plan.point == name && CRASH_HITS.fetch_add(1, Ordering::SeqCst) + 1 == plan.nth {
            eprintln!("secureloop-artifact: crash point '{name}' hit, aborting");
            std::process::abort();
        }
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Deterministic I/O fault injection for the durable write path.
///
/// Faults can be armed programmatically ([`fault::arm`], used by the
/// mapper's `FaultScope` under its process-wide lock) or via
/// `SECURELOOP_ARTIFACT_IO_FAIL=<n|all>` for subprocess tests. A finite
/// budget models transient errors (retries eventually succeed);
/// [`fault::arm_all`] models a persistently full or read-only disk.
pub mod fault {
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::OnceLock;

    /// Remaining injected-failure budget.
    /// -1 = disarmed, i64::MAX = unlimited ("all").
    static BUDGET: AtomicI64 = AtomicI64::new(-1);
    static ENV_ARMED: OnceLock<()> = OnceLock::new();

    fn arm_from_env() {
        ENV_ARMED.get_or_init(|| {
            if let Ok(spec) = std::env::var("SECURELOOP_ARTIFACT_IO_FAIL") {
                if spec == "all" {
                    BUDGET.store(i64::MAX, Ordering::SeqCst);
                } else if let Ok(n) = spec.parse::<i64>() {
                    BUDGET.store(n.max(0), Ordering::SeqCst);
                }
            }
        });
    }

    /// Arm a finite budget of injected write failures.
    pub fn arm(budget: u64) {
        BUDGET.store(i64::try_from(budget).unwrap_or(i64::MAX), Ordering::SeqCst);
    }

    /// Arm unlimited injected failures (persistent ENOSPC/EROFS model).
    pub fn arm_all() {
        BUDGET.store(i64::MAX, Ordering::SeqCst);
    }

    /// Disarm injection entirely.
    pub fn disarm() {
        BUDGET.store(-1, Ordering::SeqCst);
    }

    /// Consume one fault if armed with budget remaining.
    pub(crate) fn take() -> bool {
        arm_from_env();
        let mut cur = BUDGET.load(Ordering::SeqCst);
        loop {
            if cur <= 0 {
                return false;
            }
            let next = if cur == i64::MAX { cur } else { cur - 1 };
            match BUDGET.compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return true,
                Err(v) => cur = v,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Durable write
// ---------------------------------------------------------------------------

/// The `.bak` (last-known-good generation) path for an artifact.
pub fn backup_path(path: &Path) -> PathBuf {
    path.with_extension("bak")
}

/// The temp path used during a durable write (matches the pre-existing
/// `.tmp` convention so the stale-tmp sweepers keep working).
pub fn temp_path(path: &Path) -> PathBuf {
    path.with_extension("tmp")
}

/// Seal `payload` in an envelope and write it durably to `path`:
/// temp-write → fsync(temp) → rotate previous generation to `.bak` →
/// rename → fsync(parent dir), retrying with exponential backoff per
/// `policy`. The previous generation is preserved via `hard_link`, so
/// the primary file is present at every instant of the sequence.
pub fn write_durable(
    path: &Path,
    payload: &str,
    policy: &DurabilityPolicy,
) -> Result<(), ArtifactError> {
    let sealed = seal(payload);
    let mut attempt = 0u32;
    loop {
        match write_once(path, &sealed, policy) {
            Ok(()) => return Ok(()),
            Err(e) if attempt < policy.retries => {
                let shift = attempt.min(16);
                std::thread::sleep(policy.backoff.saturating_mul(1u32 << shift));
                attempt += 1;
                let _ = e;
            }
            Err(e) => return Err(e),
        }
    }
}

fn io_err(path: &Path, op: &'static str, e: impl fmt::Display) -> ArtifactError {
    ArtifactError::Io {
        path: path.display().to_string(),
        op,
        message: e.to_string(),
    }
}

fn write_once(path: &Path, sealed: &str, policy: &DurabilityPolicy) -> Result<(), ArtifactError> {
    let tmp = temp_path(path);
    let result = write_once_inner(path, &tmp, sealed, policy);
    if result.is_err() {
        // A failed attempt must not strand a torn temp file; after a
        // successful rename the temp no longer exists so this is a no-op.
        let _ = fs::remove_file(&tmp);
    }
    result
}

fn write_once_inner(
    path: &Path,
    tmp: &Path,
    sealed: &str,
    policy: &DurabilityPolicy,
) -> Result<(), ArtifactError> {
    if fault::take() {
        return Err(io_err(path, "write", "injected I/O fault"));
    }
    let mut f = File::create(tmp).map_err(|e| io_err(path, "create", e))?;
    f.write_all(sealed.as_bytes())
        .map_err(|e| io_err(path, "write", e))?;
    crash_point("after-temp-write");
    if policy.fsync {
        f.sync_data().map_err(|e| io_err(path, "fsync", e))?;
    }
    drop(f);
    crash_point("after-temp-fsync");
    if path.exists() {
        let bak = backup_path(path);
        match fs::remove_file(&bak) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(path, "rotate-backup", e)),
        }
        // hard_link keeps the primary present throughout; fall back to a
        // copy on filesystems without hard links.
        if fs::hard_link(path, &bak).is_err() {
            fs::copy(path, &bak)
                .map(|_| ())
                .map_err(|e| io_err(path, "rotate-backup", e))?;
        }
    }
    crash_point("after-backup");
    fs::rename(tmp, path).map_err(|e| io_err(path, "rename", e))?;
    crash_point("after-rename");
    if policy.fsync {
        if let Some(dir) = path.parent() {
            // Directory fsync pins the rename; best-effort on platforms
            // where directories cannot be opened.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Recoverable load
// ---------------------------------------------------------------------------

/// Where a recovered artifact ultimately came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadSource {
    /// The primary file, parsed strictly.
    Primary,
    /// The primary file, recovered record-by-record.
    PrimarySalvaged,
    /// The `.bak` last-known-good generation.
    Backup,
    /// The `.bak` generation, recovered record-by-record.
    BackupSalvaged,
}

/// A successfully (possibly partially) recovered artifact.
#[derive(Debug, Clone)]
pub struct Recovered<T> {
    /// The recovered value.
    pub value: T,
    /// Which rung of the salvage ladder produced it.
    pub source: LoadSource,
    /// Human-readable notes about anything lossy that happened.
    pub warnings: Vec<String>,
}

/// Read an artifact file and verify its envelope.
///
/// Returns the payload (footer stripped) plus the [`Integrity`]
/// verdict. A 0-byte file is [`ArtifactError::Empty`]; read failures
/// are [`ArtifactError::Io`].
pub fn read_verified(path: &Path) -> Result<(String, Integrity), ArtifactError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, "read", e))?;
    if text.is_empty() {
        return Err(ArtifactError::Empty {
            path: path.display().to_string(),
        });
    }
    let (payload, integrity) = open(&text);
    Ok((payload.to_string(), integrity))
}

/// Load an artifact through the salvage ladder.
///
/// `parse` is the strict loader (it should reject wrong versions /
/// kinds); `salvage` recovers what it can from a damaged payload and
/// returns `None` when nothing trustworthy survives — it must apply the
/// same version/kind gate, so a wrong-schema file is never record-mined
/// into the current schema.
///
/// Ladder: primary strict → primary salvage (only when the envelope or
/// strict parse failed) → `.bak` strict → `.bak` salvage. A 0-byte
/// primary skips straight to the backup; if that is also unusable the
/// original [`ArtifactError::Empty`] is returned so callers can treat
/// the artifact as absent.
pub fn load_recoverable<T>(
    path: &Path,
    parse: impl Fn(&str) -> Result<T, String>,
    salvage: impl Fn(&str) -> Option<(T, String)>,
) -> Result<Recovered<T>, ArtifactError> {
    let display = path.display().to_string();
    let primary_failure: String;
    match read_verified(path) {
        Ok((payload, integrity)) => {
            let envelope_note = match &integrity {
                Integrity::Damaged(reason) => Some(reason.clone()),
                _ => None,
            };
            if envelope_note.is_none() {
                match parse(&payload) {
                    Ok(value) => {
                        return Ok(Recovered {
                            value,
                            source: LoadSource::Primary,
                            warnings: Vec::new(),
                        })
                    }
                    Err(e) => primary_failure = e,
                }
            } else {
                primary_failure = envelope_note.unwrap();
            }
            if let Some((value, note)) = salvage(&payload) {
                return Ok(Recovered {
                    value,
                    source: LoadSource::PrimarySalvaged,
                    warnings: vec![format!(
                        "salvaged '{display}' ({primary_failure}): {note}"
                    )],
                });
            }
        }
        Err(e @ ArtifactError::Empty { .. }) => {
            // Crash between create and write: fall through to the backup,
            // and report Empty (absent-with-warning) if that fails too.
            if let Some(rec) = try_backup(path, &parse, &salvage, "primary is empty") {
                return Ok(rec);
            }
            return Err(e);
        }
        Err(e) => return Err(e),
    }
    match try_backup(path, &parse, &salvage, &primary_failure) {
        Some(rec) => Ok(rec),
        None => Err(ArtifactError::Corrupt {
            path: display,
            message: format!("{primary_failure}; no usable backup generation"),
        }),
    }
}

fn try_backup<T>(
    path: &Path,
    parse: &impl Fn(&str) -> Result<T, String>,
    salvage: &impl Fn(&str) -> Option<(T, String)>,
    why: &str,
) -> Option<Recovered<T>> {
    let bak = backup_path(path);
    let (payload, integrity) = read_verified(&bak).ok()?;
    let display = path.display().to_string();
    if !matches!(integrity, Integrity::Damaged(_)) {
        if let Ok(value) = parse(&payload) {
            return Some(Recovered {
                value,
                source: LoadSource::Backup,
                warnings: vec![format!(
                    "recovered '{display}' from backup generation '{}' ({why})",
                    bak.display()
                )],
            });
        }
    }
    let (value, note) = salvage(&payload)?;
    Some(Recovered {
        value,
        source: LoadSource::BackupSalvaged,
        warnings: vec![format!(
            "salvaged backup generation '{}' of '{display}' ({why}): {note}",
            bak.display()
        )],
    })
}

// ---------------------------------------------------------------------------
// Raw-text salvage scanners
// ---------------------------------------------------------------------------

/// Locate the value of top-level key `key` in (possibly damaged) JSON
/// object text; returns the byte offset where the value starts.
///
/// The scan is string-aware (quotes and escapes inside values do not
/// confuse it) and only matches keys at nesting depth 1, so `"jobs"`
/// inside some entry's string field is never mistaken for the real
/// array.
fn find_key_value(payload: &str, key: &str) -> Option<usize> {
    let b = payload.as_bytes();
    let mut i = 0usize;
    let mut depth: i64 = 0;
    while i < b.len() {
        match b[i] {
            b'"' => {
                let start = i + 1;
                i += 1;
                let mut esc = false;
                while i < b.len() {
                    let c = b[i];
                    if esc {
                        esc = false;
                    } else if c == b'\\' {
                        esc = true;
                    } else if c == b'"' {
                        break;
                    }
                    i += 1;
                }
                if i >= b.len() {
                    return None; // truncated inside a string
                }
                let content = &payload[start..i];
                i += 1;
                let mut j = i;
                while j < b.len() && b[j].is_ascii_whitespace() {
                    j += 1;
                }
                if depth == 1 && j < b.len() && b[j] == b':' && content == key {
                    let mut k = j + 1;
                    while k < b.len() && b[k].is_ascii_whitespace() {
                        k += 1;
                    }
                    return Some(k);
                }
            }
            b'{' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                depth -= 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// Extract one balanced JSON value starting at `start`; returns its end
/// offset (exclusive), or `None` if the input ends before it balances.
fn balanced_value_end(payload: &str, start: usize) -> Option<usize> {
    let b = payload.as_bytes();
    let mut i = start;
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut esc = false;
    while i < b.len() {
        let c = b[i];
        if in_string {
            if esc {
                esc = false;
            } else if c == b'\\' {
                esc = true;
            } else if c == b'"' {
                in_string = false;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
        } else {
            // A scalar value ends at the first delimiter at depth 0;
            // this must run before the bracket arms so the enclosing
            // array's `]` terminates the scalar instead of unbalancing.
            if depth == 0
                && i > start
                && (c == b',' || c == b']' || c == b'}' || c.is_ascii_whitespace())
            {
                return Some(i);
            }
            match c {
                b'"' => in_string = true,
                b'{' | b'[' => depth += 1,
                b'}' | b']' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i + 1);
                    }
                    if depth < 0 {
                        return None;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    if depth == 0 && !in_string && i > start {
        Some(i) // bare scalar running to end of input
    } else {
        None
    }
}

/// Salvage the string value of top-level `key` from damaged JSON text.
/// Intended for header scalars like `"kind"` — no unescaping is done.
pub fn salvage_string_field(payload: &str, key: &str) -> Option<String> {
    let start = find_key_value(payload, key)?;
    let b = payload.as_bytes();
    if start >= b.len() || b[start] != b'"' {
        return None;
    }
    let mut i = start + 1;
    let mut esc = false;
    while i < b.len() {
        let c = b[i];
        if esc {
            esc = false;
        } else if c == b'\\' {
            esc = true;
        } else if c == b'"' {
            return Some(payload[start + 1..i].to_string());
        }
        i += 1;
    }
    None
}

/// Salvage the unsigned integer value of top-level `key` from damaged
/// JSON text. Intended for header scalars like `"version"`.
pub fn salvage_u64_field(payload: &str, key: &str) -> Option<u64> {
    let start = find_key_value(payload, key)?;
    let b = payload.as_bytes();
    let mut end = start;
    while end < b.len() && b[end].is_ascii_digit() {
        end += 1;
    }
    if end == start {
        return None;
    }
    payload[start..end].parse().ok()
}

/// Salvage complete items from the top-level array `key` in damaged
/// JSON text. Each returned string is one balanced element (an object,
/// usually); scanning stops cleanly at the first truncated or
/// unbalanced item, so only records that were fully written come back.
/// Callers parse and validate each item individually.
pub fn salvage_array_items(payload: &str, key: &str) -> Vec<String> {
    let mut items = Vec::new();
    let Some(start) = find_key_value(payload, key) else {
        return items;
    };
    let b = payload.as_bytes();
    if start >= b.len() || b[start] != b'[' {
        return items;
    }
    let mut i = start + 1;
    loop {
        while i < b.len() && (b[i].is_ascii_whitespace() || b[i] == b',') {
            i += 1;
        }
        if i >= b.len() || b[i] == b']' {
            break;
        }
        let Some(end) = balanced_value_end(payload, i) else {
            break; // truncated tail: keep what we have
        };
        items.push(payload[i..end].to_string());
        i = end;
    }
    items
}

/// Split JSON-Lines text into complete lines, dropping a trailing
/// partial line (no terminating newline). Returns the complete lines
/// and whether a partial tail was dropped.
pub fn salvage_jsonl_lines(text: &str) -> (Vec<&str>, bool) {
    let mut lines: Vec<&str> = Vec::new();
    let mut rest = text;
    loop {
        match rest.find('\n') {
            Some(idx) => {
                let line = &rest[..idx];
                if !line.trim().is_empty() {
                    lines.push(line);
                }
                rest = &rest[idx + 1..];
            }
            None => {
                let truncated = !rest.trim().is_empty();
                return (lines, truncated);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::SeqCst);
        let dir = std::env::temp_dir().join(format!(
            "secureloop-artifact-{tag}-{}-{n}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn seal_then_open_round_trips_verified() {
        for payload in ["", "{}", "{\"a\":1}\n", "line1\nline2"] {
            let sealed = seal(payload);
            let (got, integrity) = open(&sealed);
            assert_eq!(got, payload);
            assert_eq!(integrity, Integrity::Verified, "payload {payload:?}");
        }
    }

    #[test]
    fn footerless_text_is_legacy() {
        let (payload, integrity) = open("{\"a\": 1}");
        assert_eq!(payload, "{\"a\": 1}");
        assert_eq!(integrity, Integrity::Legacy);
    }

    #[test]
    fn bit_flip_is_damaged_not_legacy() {
        let sealed = seal("{\"a\": 1234}");
        let mut bytes = sealed.into_bytes();
        bytes[3] ^= 0x40;
        let corrupted = String::from_utf8(bytes).unwrap();
        let (_, integrity) = open(&corrupted);
        assert!(
            matches!(integrity, Integrity::Damaged(ref r) if r.contains("checksum")),
            "got {integrity:?}"
        );
    }

    #[test]
    fn truncated_payload_is_damaged() {
        let sealed = seal("{\"a\": 1234, \"b\": [1,2,3]}");
        // Cut bytes out of the middle, keeping the footer line intact.
        let footer_at = sealed.rfind(FOOTER_PREFIX).unwrap();
        let mangled = format!("{}{}", &sealed[..10], &sealed[footer_at..]);
        let (_, integrity) = open(&mangled);
        assert!(matches!(integrity, Integrity::Damaged(_)), "got {integrity:?}");
    }

    #[test]
    fn mutated_footer_is_damaged_not_legacy() {
        let sealed = seal("{\"a\": 1}");
        let mangled = sealed.replace("fnv1a=", "fnv1a=zz");
        let (_, integrity) = open(&mangled);
        assert!(matches!(integrity, Integrity::Damaged(_)), "got {integrity:?}");
    }

    #[test]
    fn payload_containing_footer_prefix_still_verifies() {
        let tricky = format!("{{\"note\": \"{FOOTER_PREFIX} v1 len=0 fnv1a=0\"}}");
        let sealed = seal(&tricky);
        let (payload, integrity) = open(&sealed);
        assert_eq!(payload, tricky);
        assert_eq!(integrity, Integrity::Verified);
    }

    #[test]
    fn write_durable_keeps_a_backup_generation() {
        let dir = tmpdir("bak");
        let path = dir.join("state.json");
        let policy = DurabilityPolicy::fast();
        write_durable(&path, "{\"gen\": 1}", &policy).unwrap();
        assert!(!backup_path(&path).exists());
        write_durable(&path, "{\"gen\": 2}", &policy).unwrap();
        let bak_text = fs::read_to_string(backup_path(&path)).unwrap();
        let (bak_payload, bak_integrity) = open(&bak_text);
        assert_eq!(bak_payload, "{\"gen\": 1}");
        assert_eq!(bak_integrity, Integrity::Verified);
        let (cur, _) = read_verified(&path).unwrap();
        assert_eq!(cur, "{\"gen\": 2}");
    }

    #[test]
    fn transient_faults_are_retried_within_budget() {
        let dir = tmpdir("retry");
        let path = dir.join("state.json");
        let policy = DurabilityPolicy {
            fsync: false,
            retries: 3,
            backoff: Duration::from_millis(1),
        };
        fault::arm(2);
        let res = write_durable(&path, "{\"ok\": true}", &policy);
        fault::disarm();
        assert!(res.is_ok(), "got {res:?}");
        let (payload, integrity) = read_verified(&path).unwrap();
        assert_eq!(payload, "{\"ok\": true}");
        assert_eq!(integrity, Integrity::Verified);
    }

    #[test]
    fn persistent_faults_exhaust_retries_with_typed_error() {
        let dir = tmpdir("enospc");
        let path = dir.join("state.json");
        let policy = DurabilityPolicy {
            fsync: false,
            retries: 2,
            backoff: Duration::from_millis(1),
        };
        fault::arm_all();
        let res = write_durable(&path, "{}", &policy);
        fault::disarm();
        match res {
            Err(ArtifactError::Io { ref path, ref message, .. }) => {
                assert!(path.contains("state.json"));
                assert!(message.contains("injected"));
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        assert!(!path.exists());
    }

    #[test]
    fn empty_file_is_typed_empty() {
        let dir = tmpdir("empty");
        let path = dir.join("state.json");
        fs::write(&path, "").unwrap();
        let err = read_verified(&path).unwrap_err();
        assert!(err.is_empty(), "got {err:?}");
        assert!(err.path().contains("state.json"));
    }

    #[test]
    fn load_recoverable_falls_back_to_backup_on_corruption() {
        let dir = tmpdir("ladder");
        let path = dir.join("state.json");
        let policy = DurabilityPolicy::fast();
        write_durable(&path, "{\"v\": 1}", &policy).unwrap();
        write_durable(&path, "{\"v\": 2}", &policy).unwrap();
        // Corrupt the primary beyond salvage.
        fs::write(&path, seal("{\"v\": 2}").replace('2', "X")).unwrap();
        let rec = load_recoverable(
            &path,
            |p| {
                salvage_u64_field(p, "v")
                    .filter(|_| p.starts_with('{') && p.ends_with('}'))
                    .ok_or_else(|| "no v".to_string())
            },
            |_| None,
        )
        .unwrap();
        assert_eq!(rec.value, 1, "backup generation should win");
        assert_eq!(rec.source, LoadSource::Backup);
        assert!(rec.warnings[0].contains("backup"));
    }

    #[test]
    fn load_recoverable_salvages_damaged_primary_first() {
        let dir = tmpdir("salvage");
        let path = dir.join("state.json");
        let full = "{\"version\": 3, \"items\": [{\"id\": 1}, {\"id\": 2}, {\"id\": 3}]}";
        // Simulate a torn write: sealed, then truncated mid-array (footer lost).
        let sealed = seal(full);
        fs::write(&path, &sealed[..full.rfind(", {\"id\": 3").unwrap()]).unwrap();
        let rec = load_recoverable(
            &path,
            |p| {
                if p == full {
                    Ok(3usize)
                } else {
                    Err("strict parse failed".to_string())
                }
            },
            |p| {
                if salvage_u64_field(p, "version") != Some(3) {
                    return None;
                }
                let items = salvage_array_items(p, "items");
                if items.is_empty() {
                    None
                } else {
                    let n = items.len();
                    Some((n, format!("kept {n} records")))
                }
            },
        )
        .unwrap();
        assert_eq!(rec.value, 2, "two intact records before the tear");
        assert_eq!(rec.source, LoadSource::PrimarySalvaged);
    }

    #[test]
    fn load_recoverable_reports_empty_when_no_backup() {
        let dir = tmpdir("empty-ladder");
        let path = dir.join("state.json");
        fs::write(&path, "").unwrap();
        let err = load_recoverable(&path, |_| Ok(()), |_| None::<((), String)>).unwrap_err();
        assert!(err.is_empty(), "got {err:?}");
    }

    #[test]
    fn salvage_scanners_ignore_keys_inside_strings_and_nested_objects() {
        let text = r#"{"version": 7, "note": "\"jobs\": [fake]", "meta": {"jobs": [1]}, "jobs": [{"id": "a,b]{"}, {"id": "c"}"#;
        assert_eq!(salvage_u64_field(text, "version"), Some(7));
        let items = salvage_array_items(text, "jobs");
        assert_eq!(items.len(), 2);
        assert!(items[0].contains("a,b]{"));
        assert_eq!(items[1], r#"{"id": "c"}"#);
    }

    #[test]
    fn salvage_string_field_reads_header_scalars() {
        let text = r#"{"kind": "service-journal", "version": 1, "jobs": ["#;
        assert_eq!(
            salvage_string_field(text, "kind").as_deref(),
            Some("service-journal")
        );
        assert_eq!(salvage_u64_field(text, "version"), Some(1));
    }

    #[test]
    fn jsonl_salvage_drops_only_the_partial_tail() {
        let (lines, truncated) = salvage_jsonl_lines("{\"a\":1}\n{\"b\":2}\n{\"c\":");
        assert_eq!(lines, vec!["{\"a\":1}", "{\"b\":2}"]);
        assert!(truncated);
        let (lines, truncated) = salvage_jsonl_lines("{\"a\":1}\n");
        assert_eq!(lines, vec!["{\"a\":1}"]);
        assert!(!truncated);
    }
}

#[cfg(test)]
mod review_probe {
    use super::*;
    #[test]
    fn open_with_len_mid_utf8_char() {
        // payload contains a multibyte char; footer claims a len that
        // lands mid-char (as corruption could produce)
        let text = format!("é\n{FOOTER_PREFIX} v1 len=1 fnv1a=0000000000000000\n");
        let (_, integrity) = open(&text);
        assert!(matches!(integrity, Integrity::Damaged(_)));
    }
}
