//! Tile grids: the lattice of tiles an accelerator sweeps over a
//! tensor, possibly overlapping (convolution halos, paper §3.2.2).

use crate::lattice::{Region, TileRect};

/// A grid of tiles over a region: `n_rows × n_cols` tiles of nominal
/// extent `tile_h × tile_w`, with origins spaced `step_h`/`step_w`
/// apart. `step < tile` produces overlapping tiles (halos); tiles are
/// clipped at the region edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileGrid {
    /// Tiles along the row axis.
    pub n_rows: u64,
    /// Tiles along the column axis.
    pub n_cols: u64,
    /// Nominal tile row extent.
    pub tile_h: u64,
    /// Nominal tile column extent.
    pub tile_w: u64,
    /// Row distance between consecutive tile origins.
    pub step_h: u64,
    /// Column distance between consecutive tile origins.
    pub step_w: u64,
    /// Signed origin shift (convolution padding places the first
    /// window at `-pad`); tiles are clipped to the region.
    pub off_h: i64,
    /// Signed column origin shift.
    pub off_w: i64,
}

impl TileGrid {
    /// A non-overlapping grid that exactly covers `region` with tiles of
    /// the given extent (edge tiles clipped).
    pub fn covering(region: Region, tile_h: u64, tile_w: u64) -> Self {
        assert!(tile_h > 0 && tile_w > 0, "tile extents must be positive");
        TileGrid {
            n_rows: region.h.div_ceil(tile_h),
            n_cols: region.w.div_ceil(tile_w),
            tile_h,
            tile_w,
            step_h: tile_h,
            step_w: tile_w,
            off_h: 0,
            off_w: 0,
        }
    }

    /// An overlapping grid (halo tiles): same construction but with an
    /// explicit step smaller than the tile extent.
    pub fn covering_with_halo(
        region: Region,
        tile_h: u64,
        tile_w: u64,
        step_h: u64,
        step_w: u64,
    ) -> Self {
        assert!(step_h > 0 && step_w > 0, "steps must be positive");
        let span = |extent: u64, tile: u64, step: u64| {
            if extent <= tile {
                1
            } else {
                (extent - tile).div_ceil(step) + 1
            }
        };
        TileGrid {
            n_rows: span(region.h, tile_h, step_h),
            n_cols: span(region.w, tile_w, step_w),
            tile_h,
            tile_w,
            step_h,
            step_w,
            off_h: 0,
            off_w: 0,
        }
    }

    /// Shift every tile origin by `(off_h, off_w)` (tiles clip at the
    /// region boundary); used for padded convolutions whose first
    /// window starts at `-pad`.
    pub fn with_offset(mut self, off_h: i64, off_w: i64) -> Self {
        self.off_h = off_h;
        self.off_w = off_w;
        self
    }

    /// Total number of tiles.
    pub fn len(&self) -> u64 {
        self.n_rows * self.n_cols
    }

    /// Whether the grid is empty (never true for constructed grids).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate the tiles clipped to `region`. Tiles whose origin falls
    /// outside the region are skipped.
    pub fn tiles(&self, region: Region) -> impl Iterator<Item = TileRect> + '_ {
        let g = *self;
        (0..g.n_rows).flat_map(move |i| {
            (0..g.n_cols).filter_map(move |j| {
                // Signed origin, clipped into the region; the clipped
                // amount shrinks the tile.
                let r_signed = (i * g.step_h) as i64 + g.off_h;
                let c_signed = (j * g.step_w) as i64 + g.off_w;
                let r0 = r_signed.max(0) as u64;
                let c0 = c_signed.max(0) as u64;
                if r0 >= region.h || c0 >= region.w {
                    return None;
                }
                let clip_h = (r0 as i64 - r_signed) as u64;
                let clip_w = (c0 as i64 - c_signed) as u64;
                if g.tile_h <= clip_h || g.tile_w <= clip_w {
                    return None;
                }
                Some(TileRect::new(
                    r0,
                    c0,
                    (g.tile_h - clip_h).min(region.h - r0),
                    (g.tile_w - clip_w).min(region.w - c0),
                ))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covering_partitions_the_region() {
        let region = Region::new(30, 30);
        let g = TileGrid::covering(region, 10, 7);
        assert_eq!(g.n_rows, 3);
        assert_eq!(g.n_cols, 5);
        let total: u64 = g.tiles(region).map(|t| t.elems()).sum();
        assert_eq!(total, region.elems());
        // Edge column tiles are clipped to 2 wide.
        let last = g.tiles(region).last().unwrap();
        assert_eq!(last.cols, 2);
    }

    #[test]
    fn halo_grid_overlaps() {
        // Conv ifmap tiles: window 5, stride 3 over 11 rows -> 3 tiles.
        let region = Region::new(11, 11);
        let g = TileGrid::covering_with_halo(region, 5, 5, 3, 3);
        assert_eq!(g.n_rows, 3);
        let total: u64 = g.tiles(region).map(|t| t.elems()).sum();
        assert!(total > region.elems(), "halos duplicate data");
        for t in g.tiles(region) {
            assert!(t.fits_in(region));
        }
    }

    #[test]
    fn single_tile_grid() {
        let region = Region::new(8, 8);
        let g = TileGrid::covering(region, 8, 8);
        assert_eq!(g.len(), 1);
        assert_eq!(g.tiles(region).next().unwrap(), TileRect::new(0, 0, 8, 8));
    }

    #[test]
    fn negative_offset_clips_first_tiles() {
        // 3x3 windows stepping 2 with pad 1: origins -1, 1, 3, ...
        let region = Region::new(8, 8);
        let g = TileGrid::covering_with_halo(region, 3, 3, 2, 2).with_offset(-1, -1);
        let tiles: Vec<_> = g.tiles(region).collect();
        // First tile is clipped to 2x2 at the origin.
        assert_eq!(tiles[0], TileRect::new(0, 0, 2, 2));
        // Interior tiles are full 3x3 at shifted positions.
        assert!(tiles.iter().any(|t| *t == TileRect::new(1, 1, 3, 3)));
        for t in &tiles {
            assert!(t.fits_in(region));
        }
    }

    #[test]
    fn oversized_tile_is_clipped() {
        let region = Region::new(5, 5);
        let g = TileGrid::covering(region, 10, 10);
        let t = g.tiles(region).next().unwrap();
        assert_eq!((t.rows, t.cols), (5, 5));
    }
}
