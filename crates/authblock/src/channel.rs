//! Channel-major AuthBlocks — the third orientation of the paper's
//! n-dimensional generalisation (§4.2: "flattening an n-dimensional
//! tensor to a 1-d vector and slicing it").
//!
//! The 2-D machinery in [`crate::count`] covers blocks running within a
//! feature-map plane (horizontal/vertical). For pointwise (1×1)
//! convolutions the consumer reads *all channels of a pixel window*, so
//! blocks running along the **channel** axis at fixed pixel can align
//! perfectly where in-plane blocks cannot.
//!
//! Layout modelled here: the producer tile holds `channels` values per
//! pixel, linearised channel-fastest
//! (`index = pixel · channels + channel`). Blocks of `u` elements slice
//! that vector. A consumer fetching a channel interval of a pixel
//! rectangle therefore touches, for each row of pixels, a *rectangle*
//! in the (pixel, channel) grid — which is exactly the 2-D counting
//! problem already solved in closed form, reused here row by row.

use crate::count::{count_blocks, BlockCount};
use crate::lattice::{BlockAssignment, Orientation, Region, TileRect};

/// A consumer request against a channel-major producer tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelRequest {
    /// Producer-tile pixel grid extent (rows × cols of pixels).
    pub pixel_rows: u64,
    /// Pixel columns.
    pub pixel_cols: u64,
    /// Channels stored per pixel.
    pub channels: u64,
    /// Consumer pixel window within the tile.
    pub window: TileRect,
    /// First channel requested.
    pub chan0: u64,
    /// Channels requested.
    pub chan_count: u64,
}

impl ChannelRequest {
    /// Elements the consumer actually needs.
    pub fn needed_elems(&self) -> u64 {
        self.window.elems() * self.chan_count
    }
}

/// Count the channel-major blocks of size `u` touched by `req`.
///
/// Each pixel row of the window is a contiguous run of pixels, so its
/// channel data forms a `(run_length × chan_count)` rectangle in the
/// (pixel, channel) grid with row stride `channels` — the 2-D row-major
/// counting problem. Rows of the window are disjoint pixel runs, but
/// blocks can span the gap between them; to stay exact we count the
/// union by re-using the closed-form counter on the *whole* window when
/// the window covers full pixel rows, and summing disjoint-row counts
/// with boundary-block deduplication otherwise.
///
/// # Panics
///
/// Panics if the window or channel interval exceeds the tile.
pub fn count_channel_blocks(req: &ChannelRequest, u: u64) -> BlockCount {
    assert!(u > 0, "block size must be positive");
    assert!(
        req.window
            .fits_in(Region::new(req.pixel_rows, req.pixel_cols)),
        "window exceeds the pixel grid"
    );
    assert!(
        req.chan0 + req.chan_count <= req.channels,
        "channel interval exceeds the tile"
    );

    let pixel_region_elems = req.pixel_rows * req.pixel_cols * req.channels;

    // Full-width window: the pixels form one contiguous run per window,
    // so the whole request is a single rectangle in the
    // (pixel, channel) grid.
    if req.window.col0 == 0 && req.window.cols == req.pixel_cols {
        let region = Region::new(req.pixel_rows * req.pixel_cols, req.channels);
        let tile = TileRect::new(
            req.window.row0 * req.pixel_cols,
            req.chan0,
            req.window.rows * req.pixel_cols,
            req.chan_count,
        );
        return count_blocks(
            region,
            tile,
            BlockAssignment::new(Orientation::Horizontal, u),
        );
    }

    // General case: one rectangle per window row; adjacent rows may
    // share a block only at their linear boundary, so subtract
    // double-counted boundary blocks.
    let region = Region::new(req.pixel_rows * req.pixel_cols, req.channels);
    let mut blocks = 0u64;
    let mut fetched = 0u64;
    let mut prev_last_block: Option<u64> = None;
    for r in 0..req.window.rows {
        let pixel0 = (req.window.row0 + r) * req.pixel_cols + req.window.col0;
        let tile = TileRect::new(pixel0, req.chan0, req.window.cols, req.chan_count);
        let c = count_blocks(
            region,
            tile,
            BlockAssignment::new(Orientation::Horizontal, u),
        );
        blocks += c.blocks;
        fetched += c.fetched_elems;
        // First block of this row == last block of the previous row?
        let first_block = (pixel0 * req.channels + req.chan0) / u;
        let last_block =
            ((pixel0 + req.window.cols - 1) * req.channels + req.chan0 + req.chan_count - 1) / u;
        if prev_last_block == Some(first_block) {
            blocks -= 1;
            fetched -= u.min(pixel_region_elems - first_block * u);
        }
        prev_last_block = Some(last_block);
    }
    BlockCount {
        blocks,
        fetched_elems: fetched,
    }
}

/// Brute-force reference for [`count_channel_blocks`].
pub fn count_channel_blocks_brute(req: &ChannelRequest, u: u64) -> BlockCount {
    let mut ids = std::collections::HashSet::new();
    for pr in req.window.row0..req.window.row0 + req.window.rows {
        for pc in req.window.col0..req.window.col0 + req.window.cols {
            let pixel = pr * req.pixel_cols + pc;
            for ch in req.chan0..req.chan0 + req.chan_count {
                ids.insert((pixel * req.channels + ch) / u);
            }
        }
    }
    let total = req.pixel_rows * req.pixel_cols * req.channels;
    let last_id = (total - 1) / u;
    let mut fetched = ids.len() as u64 * u;
    if ids.contains(&last_id) && !total.is_multiple_of(u) {
        fetched -= u - total % u;
    }
    BlockCount {
        blocks: ids.len() as u64,
        fetched_elems: fetched,
    }
}

/// Overhead (hash + redundant bits) of channel-major size-`u` blocks for
/// a set of consumer requests against one producer tile.
pub fn channel_overhead_bits(
    requests: &[ChannelRequest],
    u: u64,
    word_bits: u32,
    tag_bits: u32,
) -> u64 {
    requests
        .iter()
        .map(|req| {
            let c = count_channel_blocks(req, u);
            c.blocks * u64::from(tag_bits)
                + (c.fetched_elems - req.needed_elems()) * u64::from(word_bits)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_request() -> ChannelRequest {
        ChannelRequest {
            pixel_rows: 7,
            pixel_cols: 7,
            channels: 96,
            window: TileRect::new(0, 0, 7, 7),
            chan0: 0,
            chan_count: 96,
        }
    }

    #[test]
    fn pointwise_full_read_aligns_perfectly() {
        // A 1x1 consumer reading all channels of the whole tile: any u
        // dividing the total gives zero redundancy.
        let req = full_request();
        for u in [1u64, 4, 32, 96, 96 * 7] {
            let c = count_channel_blocks(&req, u);
            assert_eq!(c.fetched_elems, req.needed_elems(), "u = {u}");
        }
    }

    #[test]
    fn channel_subset_pays_redundancy_only_when_misaligned() {
        let mut req = full_request();
        req.chan0 = 0;
        req.chan_count = 48; // half the channels of every pixel
                             // u = 48 aligns with the halves: zero redundancy.
        let aligned = count_channel_blocks(&req, 48);
        assert_eq!(aligned.fetched_elems, req.needed_elems());
        // u = 96 forces fetching the other half too.
        let whole = count_channel_blocks(&req, 96);
        assert_eq!(whole.fetched_elems, 2 * req.needed_elems());
    }

    #[test]
    fn window_subset_counts_match_brute_force() {
        for (rows, cols, ch) in [(5u64, 6u64, 12u64), (4, 4, 7), (3, 8, 16)] {
            for (r0, c0, wr, wc) in [(0u64, 0u64, 2u64, 3u64), (1, 2, 3, 2), (2, 0, 1, 1)] {
                if r0 + wr > rows || c0 + wc > cols {
                    continue;
                }
                for (ch0, chn) in [(0u64, ch), (1, ch / 2), (ch / 3, ch / 2)] {
                    if chn == 0 || ch0 + chn > ch {
                        continue;
                    }
                    let req = ChannelRequest {
                        pixel_rows: rows,
                        pixel_cols: cols,
                        channels: ch,
                        window: TileRect::new(r0, c0, wr, wc),
                        chan0: ch0,
                        chan_count: chn,
                    };
                    for u in 1..=(rows * cols * ch + 1) {
                        let fast = count_channel_blocks(&req, u);
                        let brute = count_channel_blocks_brute(&req, u);
                        assert_eq!(
                            fast, brute,
                            "rows={rows} cols={cols} ch={ch} win=({r0},{c0},{wr},{wc}) \
                             chans=({ch0},{chn}) u={u}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn channel_major_beats_in_plane_for_pointwise_consumers() {
        // A pointwise consumer reads pixel columns with all channels;
        // channel-major blocks of one pixel's channels align exactly,
        // while in-plane blocks of the same size cut across channels of
        // many pixels and overfetch.
        let req = ChannelRequest {
            pixel_rows: 7,
            pixel_cols: 7,
            channels: 96,
            window: TileRect::new(0, 0, 7, 3), // partial-width window
            chan0: 0,
            chan_count: 96,
        };
        let cm = count_channel_blocks(&req, 96);
        assert_eq!(
            cm.fetched_elems,
            req.needed_elems(),
            "per-pixel blocks align"
        );
        // Equivalent in-plane assignment: 7x(7*96) plane, horizontal
        // u=96 blocks start at pixel-row boundaries, not channel runs —
        // a 3-pixel-wide window misaligns (each row needs channels
        // 0..288 of a 672-wide row: 96 divides 288, so actually aligned
        // here; shift the window to force misalignment).
        let plane = Region::new(7, 7 * 96);
        let shifted = TileRect::new(0, 96 * 2 + 48, 7, 96 * 3); // half-channel offset
        let ip = count_blocks(
            plane,
            shifted,
            BlockAssignment::new(Orientation::Horizontal, 96),
        );
        assert!(ip.fetched_elems > shifted.elems(), "in-plane misaligns");
    }

    #[test]
    fn overhead_helper_sums_requests() {
        let req = full_request();
        let bits = channel_overhead_bits(&[req, req], 96, 8, 64);
        // Zero redundancy, 49 blocks per request, 64-bit tags.
        assert_eq!(bits, 2 * 49 * 64);
    }

    #[test]
    #[should_panic(expected = "channel interval exceeds")]
    fn out_of_range_channels_panic() {
        let mut req = full_request();
        req.chan_count = 97;
        let _ = count_channel_blocks(&req, 4);
    }
}
