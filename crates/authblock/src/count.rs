//! Counting AuthBlocks touched by a tile, three ways.
//!
//! * [`count_blocks_brute`] — visit every element; the obviously-correct
//!   reference used by the property tests.
//! * [`count_blocks_rows`] — `O(tile rows)` union of per-row block
//!   ranges; what a "detailed simulation" would do per tile.
//! * [`count_blocks`] — the paper's closed-form solver: `O(log)` floor
//!   sums and one linear-congruence count (§4.2). This is what the
//!   optimiser's exhaustive orientation×size sweep uses, which is how
//!   SecureLoop keeps the search tractable.

use std::collections::HashSet;

use secureloop_telemetry::Counter;

use crate::congruence::{count_residues_le, floor_sum};
use crate::lattice::{BlockAssignment, Region, TileRect};

/// How many times the closed-form congruence solver ran — the unit the
/// optimiser's `OPTIMIZE_BUDGET` is denominated in.
static CONGRUENCE_CALLS: Counter = Counter::new("authblock.congruence_calls");

/// The outcome of overlapping one tile against one block lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockCount {
    /// Distinct AuthBlocks touched (each costs one hash fetch).
    pub blocks: u64,
    /// Total elements that must be fetched to verify those blocks
    /// (block size × blocks, trimmed for the region's short final
    /// block). Redundant reads = `fetched_elems - tile.elems()`.
    pub fetched_elems: u64,
}

impl BlockCount {
    /// Elements fetched beyond the tile's own data.
    pub fn redundant_elems(&self, tile: TileRect) -> u64 {
        self.fetched_elems - tile.elems()
    }
}

fn assert_tile_fits(region: Region, tile: TileRect) {
    assert!(
        tile.fits_in(region),
        "tile {tile:?} exceeds region {region:?}"
    );
}

/// Trim `blocks * u` down by the region's short final block, if block
/// `last_id` is among the touched ones.
///
/// The raw product `blocks * u` can exceed `u64` (up to `elems + u - 1`
/// before trimming, ~2^65 for near-`u32::MAX` extents), so it is formed
/// in `u128`; the trimmed value is at most `region.elems()` and
/// converts back losslessly.
fn fetched_from_blocks(region: Region, u: u64, blocks: u64, touches_last: bool) -> u64 {
    let total = region.elems();
    let mut fetched = blocks as u128 * u as u128;
    if touches_last && !total.is_multiple_of(u) {
        fetched -= (u - total % u) as u128;
    }
    u64::try_from(fetched).expect("trimmed fetch volume fits the region")
}

/// Reference implementation: enumerate every tile element.
pub fn count_blocks_brute(region: Region, tile: TileRect, assign: BlockAssignment) -> BlockCount {
    let (region, tile) = assign.to_row_major(region, tile);
    assert_tile_fits(region, tile);
    let u = assign.size;
    let mut ids = HashSet::new();
    for r in tile.row0..tile.row0 + tile.rows {
        for c in tile.col0..tile.col0 + tile.cols {
            ids.insert((r * region.w + c) / u);
        }
    }
    let last_id = (region.elems() - 1) / u;
    let touches_last = ids.contains(&last_id);
    BlockCount {
        blocks: ids.len() as u64,
        fetched_elems: fetched_from_blocks(region, u, ids.len() as u64, touches_last),
    }
}

/// Per-row interval union: `O(tile rows)`.
pub fn count_blocks_rows(region: Region, tile: TileRect, assign: BlockAssignment) -> BlockCount {
    let (region, tile) = assign.to_row_major(region, tile);
    assert_tile_fits(region, tile);
    // Linear indices are formed in u128: `r * w + col0` is bounded by
    // `elems - 1` for an in-bounds tile, but widening keeps the
    // intermediate products exact even at the extreme of that range.
    let u = assign.size as u128;
    let mut blocks = 0u64;
    let mut prev_hi: Option<u128> = None;
    let mut max_hi = 0u128;
    for r in tile.row0..tile.row0 + tile.rows {
        let start = r as u128 * region.w as u128 + tile.col0 as u128;
        let end = start + tile.cols as u128 - 1;
        let lo = start / u;
        let hi = end / u;
        let from = match prev_hi {
            Some(p) if p >= lo => p + 1,
            _ => lo,
        };
        if hi >= from {
            blocks += (hi - from + 1) as u64;
        }
        prev_hi = Some(prev_hi.map_or(hi, |p| p.max(hi)));
        max_hi = max_hi.max(hi);
    }
    let last_id = (region.elems() - 1) as u128 / u;
    BlockCount {
        blocks,
        fetched_elems: fetched_from_blocks(region, assign.size, blocks, max_hi == last_id),
    }
}

/// Closed-form counter (paper §4.2): two floor sums for the block-range
/// envelope plus one congruence count for inter-row gaps.
///
/// With row-major blocks of size `u` on a region of width `w`, the tile's
/// row `r` occupies blocks `[⌊s_r/u⌋, ⌊e_r/u⌋]` where `s_r, e_r` are
/// arithmetic progressions with common difference `w`. Those intervals
/// are monotone, so their union is the envelope minus the gaps between
/// consecutive rows — and the gap sizes depend only on
/// `(e_r mod u)`, a linear-congruence count.
pub fn count_blocks(region: Region, tile: TileRect, assign: BlockAssignment) -> BlockCount {
    CONGRUENCE_CALLS.incr();
    let (region, tile) = assign.to_row_major(region, tile);
    assert_tile_fits(region, tile);
    // All linear-index arithmetic is widened to u128: `e0 + (n-1)*w`
    // is the tile's last linear element (bounded by `elems - 1` for an
    // in-bounds tile), but the products along the way are formed from
    // near-`u32::MAX` extents and must not wrap before the division.
    let u = assign.size;
    let u128w = u as u128;
    let w = region.w;
    let n = tile.rows;
    let s0 = tile.row0 as u128 * w as u128 + tile.col0 as u128;
    let e0 = s0 + tile.cols as u128 - 1;

    let lo_first = s0 / u128w;
    let hi_last = (e0 + (n as u128 - 1) * w as u128) / u128w;
    let envelope = hi_last - lo_first + 1;

    // Gap between row r-1's last block and row r's first block:
    // g = s_r - e_{r-1} = w - cols + 1 linear positions. The number of
    // block boundaries inside that span is q = ⌊g/u⌋ plus one more when
    // (e_{r-1} mod u) >= u - (g mod u); gaps of zero blocks are free.
    let gaps: u128 = if n >= 2 {
        let g = w - tile.cols + 1;
        let q = g / u;
        if q == 0 {
            0
        } else {
            let rem = g % u;
            let pairs = n - 1;
            let extra = if rem == 0 {
                0
            } else {
                // #{r in [0, pairs): (w*r + e0) mod u >= u - rem}
                pairs - count_residues_le(pairs, w % u, (e0 % u128w) as u64, u, u - rem - 1)
            };
            (pairs as u128) * (q as u128 - 1) + extra as u128
        }
    } else {
        0
    };
    // The union of the per-row intervals has at least one block per
    // row-pair boundary left, so `gaps < envelope` and the count fits
    // u64 (it is at most `blocks_in(region)`).
    let blocks = u64::try_from(envelope - gaps).expect("block count fits the region");

    let last_id = (region.elems() - 1) as u128 / u128w;
    BlockCount {
        blocks,
        fetched_elems: fetched_from_blocks(region, u, blocks, hi_last == last_id),
    }
}

/// Total floor-sum-based block-index of the last element of row `r` —
/// exposed for the Criterion benchmark that contrasts the closed-form
/// path against enumeration.
#[doc(hidden)]
pub fn envelope_probe(region: Region, tile: TileRect, u: u64) -> i64 {
    floor_sum(
        tile.rows as i64,
        u as i64,
        region.w as i64,
        (tile.row0 * region.w + tile.col0 + tile.cols - 1) as i64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Orientation;

    fn all_three(region: Region, tile: TileRect, assign: BlockAssignment) -> BlockCount {
        let a = count_blocks_brute(region, tile, assign);
        let b = count_blocks_rows(region, tile, assign);
        let c = count_blocks(region, tile, assign);
        assert_eq!(a, b, "rows vs brute: {region:?} {tile:?} {assign}");
        assert_eq!(a, c, "congruence vs brute: {region:?} {tile:?} {assign}");
        a
    }

    #[test]
    fn paper_fig7_examples() {
        // Fig. 7: a 2x6 region written as 1x3 ofmap tiles, read as 2x2
        // ifmap tiles. The first ifmap tile is the 2x2 at the origin.
        let region = Region::new(2, 6);
        let tile = TileRect::new(0, 0, 2, 2);

        // (c) horizontal, size 1: one hash per element, no redundancy.
        let c = all_three(
            region,
            tile,
            BlockAssignment::new(Orientation::Horizontal, 1),
        );
        assert_eq!(c.blocks, 4);
        assert_eq!(c.redundant_elems(tile), 0);

        // (d) horizontal, size 2: fewer hashes, no redundancy for this
        // tile (blocks [0,1] and [6,7] align with columns 0-1).
        let d = all_three(
            region,
            tile,
            BlockAssignment::new(Orientation::Horizontal, 2),
        );
        assert_eq!(d.blocks, 2);
        assert_eq!(d.redundant_elems(tile), 0);

        // (e) vertical, size 3: wraps down column 0 into column 1 —
        // 2 blocks cover rows {0,1} of cols {0,1} exactly? Col-major
        // linearisation: (0,0),(1,0),(0,1) = block 0; (1,1),(0,2),(1,2)
        // = block 1. Tile touches blocks 0 and 1; block 1 brings
        // (0,2),(1,2) as redundant data.
        let e = all_three(region, tile, BlockAssignment::new(Orientation::Vertical, 3));
        assert_eq!(e.blocks, 2);
        assert_eq!(e.redundant_elems(tile), 2);

        // (f) vertical, size 6: one block covers half the region.
        let f = all_three(region, tile, BlockAssignment::new(Orientation::Vertical, 6));
        assert_eq!(f.blocks, 1);
        assert_eq!(f.redundant_elems(tile), 2);
    }

    #[test]
    fn paper_fig9_optima() {
        // h = 30, w_i = 30; consumer tile is the 30x20 right-aligned
        // region of the next layer (the misaligned 20-wide tile).
        let region = Region::new(30, 30);
        let tile = TileRect::new(0, 10, 30, 20);

        // Vertical u = 300 = h * (w_i - w_j): zero redundant reads
        // (paper: "the optimal AuthBlock size is 300").
        let v = all_three(
            region,
            tile,
            BlockAssignment::new(Orientation::Vertical, 300),
        );
        assert_eq!(v.redundant_elems(tile), 0);
        assert_eq!(v.blocks, 2);

        // Horizontal u = 10 hits a local redundancy minimum: blocks of
        // 10 align with the 10-column offset.
        let h10 = all_three(
            region,
            tile,
            BlockAssignment::new(Orientation::Horizontal, 10),
        );
        assert_eq!(h10.redundant_elems(tile), 0);
        assert_eq!(h10.blocks, 60);

        // Horizontal u = 7 misaligns: some rows fetch extra elements.
        let h7 = all_three(
            region,
            tile,
            BlockAssignment::new(Orientation::Horizontal, 7),
        );
        assert!(h7.redundant_elems(tile) > 0);
    }

    #[test]
    fn whole_region_as_one_block() {
        let region = Region::new(30, 30);
        let tile = TileRect::new(5, 5, 10, 10);
        let c = all_three(
            region,
            tile,
            BlockAssignment::new(Orientation::Horizontal, 900),
        );
        assert_eq!(c.blocks, 1);
        assert_eq!(c.fetched_elems, 900);
        assert_eq!(c.redundant_elems(tile), 800);
    }

    #[test]
    fn short_final_block_is_trimmed() {
        // 3x5 region, u = 4: blocks are 4,4,4,3 elements.
        let region = Region::new(3, 5);
        let tile = TileRect::new(2, 0, 1, 5); // last row: elems 10..15
        let c = all_three(
            region,
            tile,
            BlockAssignment::new(Orientation::Horizontal, 4),
        );
        // Row covers linear 10..=14 -> blocks 2 (8..11) and 3 (12..14).
        assert_eq!(c.blocks, 2);
        assert_eq!(c.fetched_elems, 4 + 3);
    }

    #[test]
    fn unit_blocks_never_redundant() {
        let region = Region::new(17, 13);
        for (r0, c0, rs, cs) in [(0, 0, 17, 13), (3, 2, 5, 7), (16, 12, 1, 1)] {
            let tile = TileRect::new(r0, c0, rs, cs);
            for o in Orientation::ALL {
                let c = all_three(region, tile, BlockAssignment::new(o, 1));
                assert_eq!(c.blocks, tile.elems());
                assert_eq!(c.redundant_elems(tile), 0);
            }
        }
    }

    #[test]
    fn cross_check_grid_of_geometries() {
        // Dense cross-check of the three implementations.
        for (h, w) in [(6u64, 9u64), (13, 7), (16, 16)] {
            let region = Region::new(h, w);
            for (r0, c0, rs, cs) in [
                (0u64, 0u64, h, w),
                (1, 1, h - 2, w - 2),
                (0, w / 2, h, w - w / 2),
                (h / 2, 0, h - h / 2, w / 3 + 1),
            ] {
                let tile = TileRect::new(r0, c0, rs, cs);
                for u in 1..=(h * w + 2) {
                    for o in Orientation::ALL {
                        all_three(region, tile, BlockAssignment::new(o, u));
                    }
                }
            }
        }
    }
}
