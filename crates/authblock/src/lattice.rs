//! Geometric primitives: regions, tiles, and block lattices.

use std::fmt;

/// A 2-D data region (`h` rows × `w` columns) over which AuthBlocks are
/// laid out. For DNN tensors this is one channel plane of a feature map,
/// or a producer tile when blocks are aligned per tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// Rows.
    pub h: u64,
    /// Columns.
    pub w: u64,
}

impl Region {
    /// Create a region.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero.
    pub fn new(h: u64, w: u64) -> Self {
        assert!(h > 0 && w > 0, "region extents must be positive");
        Region { h, w }
    }

    /// Total elements.
    pub fn elems(&self) -> u64 {
        self.h * self.w
    }
}

/// A rectangular tile within a region (what one off-chip access fetches
/// for DNN computation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileRect {
    /// First row.
    pub row0: u64,
    /// First column.
    pub col0: u64,
    /// Row extent.
    pub rows: u64,
    /// Column extent.
    pub cols: u64,
}

impl TileRect {
    /// Create a tile rectangle.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero.
    pub fn new(row0: u64, col0: u64, rows: u64, cols: u64) -> Self {
        assert!(rows > 0 && cols > 0, "tile extents must be positive");
        TileRect {
            row0,
            col0,
            rows,
            cols,
        }
    }

    /// Element count.
    pub fn elems(&self) -> u64 {
        self.rows * self.cols
    }

    /// Whether the tile lies entirely inside `region`.
    pub fn fits_in(&self, region: Region) -> bool {
        self.row0 + self.rows <= region.h && self.col0 + self.cols <= region.w
    }

    /// Intersect with another rectangle; `None` if disjoint.
    pub fn intersect(&self, other: &TileRect) -> Option<TileRect> {
        let r0 = self.row0.max(other.row0);
        let c0 = self.col0.max(other.col0);
        let r1 = (self.row0 + self.rows).min(other.row0 + other.rows);
        let c1 = (self.col0 + self.cols).min(other.col0 + other.cols);
        if r0 < r1 && c0 < c1 {
            Some(TileRect::new(r0, c0, r1 - r0, c1 - c0))
        } else {
            None
        }
    }
}

/// The linearisation direction of the AuthBlock lattice (paper Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Row-major: blocks run along a row and wrap to the next row.
    Horizontal,
    /// Column-major: blocks run down a column and wrap to the next
    /// column.
    Vertical,
}

impl Orientation {
    /// Both orientations.
    pub const ALL: [Orientation; 2] = [Orientation::Horizontal, Orientation::Vertical];
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Orientation::Horizontal => "horizontal",
            Orientation::Vertical => "vertical",
        })
    }
}

/// An AuthBlock assignment: orientation plus block size in elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockAssignment {
    /// Linearisation direction.
    pub orientation: Orientation,
    /// Elements per block (`u` in the paper).
    pub size: u64,
}

impl BlockAssignment {
    /// Create an assignment.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(orientation: Orientation, size: u64) -> Self {
        assert!(size > 0, "block size must be positive");
        BlockAssignment { orientation, size }
    }

    /// Number of blocks covering a region (the last block may be short).
    pub fn blocks_in(&self, region: Region) -> u64 {
        region.elems().div_ceil(self.size)
    }

    /// Transpose a (region, tile) pair so that vertical counting can
    /// reuse the horizontal (row-major) machinery.
    pub fn to_row_major(&self, region: Region, tile: TileRect) -> (Region, TileRect) {
        match self.orientation {
            Orientation::Horizontal => (region, tile),
            Orientation::Vertical => (
                Region::new(region.w, region.h),
                TileRect::new(tile.col0, tile.row0, tile.cols, tile.rows),
            ),
        }
    }
}

impl fmt::Display for BlockAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} u={}", self.orientation, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_and_tile_basics() {
        let r = Region::new(30, 30);
        assert_eq!(r.elems(), 900);
        let t = TileRect::new(0, 10, 30, 20);
        assert!(t.fits_in(r));
        assert!(!TileRect::new(0, 11, 30, 20).fits_in(r));
        assert_eq!(t.elems(), 600);
    }

    #[test]
    fn intersection() {
        let a = TileRect::new(0, 0, 10, 10);
        let b = TileRect::new(5, 5, 10, 10);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, TileRect::new(5, 5, 5, 5));
        assert!(a.intersect(&TileRect::new(10, 0, 2, 2)).is_none());
        // Intersection is symmetric.
        assert_eq!(a.intersect(&b), b.intersect(&a));
    }

    #[test]
    fn block_count_rounds_up() {
        let a = BlockAssignment::new(Orientation::Horizontal, 7);
        assert_eq!(a.blocks_in(Region::new(3, 5)), 3); // 15 / 7 -> 3
        let whole = BlockAssignment::new(Orientation::Vertical, 900);
        assert_eq!(whole.blocks_in(Region::new(30, 30)), 1);
    }

    #[test]
    fn transpose_for_vertical() {
        let a = BlockAssignment::new(Orientation::Vertical, 3);
        let (r, t) = a.to_row_major(Region::new(30, 20), TileRect::new(1, 2, 3, 4));
        assert_eq!(r, Region::new(20, 30));
        assert_eq!(t, TileRect::new(2, 1, 4, 3));
        let h = BlockAssignment::new(Orientation::Horizontal, 3);
        let (r2, t2) = h.to_row_major(Region::new(30, 20), TileRect::new(1, 2, 3, 4));
        assert_eq!((r2, t2), (Region::new(30, 20), TileRect::new(1, 2, 3, 4)));
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        let _ = BlockAssignment::new(Orientation::Horizontal, 0);
    }
}
