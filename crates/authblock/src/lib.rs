#![warn(missing_docs)]

//! Authentication-block (AuthBlock) assignment — SecureLoop's step-2
//! scheduler (paper §3.2, §4.2).
//!
//! Every block of off-chip data carries a cryptographic hash; fetching
//! any element of a block forces fetching the *whole* block plus its
//! hash. When the block lattice is misaligned with the accelerator's
//! tiles — because the producing layer tiled the tensor differently than
//! the consuming layer, or because convolution tiles overlap in *halos* —
//! the accelerator pays:
//!
//! * **hash reads** — one tag per touched block, and
//! * **redundant reads** — elements fetched only because they share a
//!   block with needed data.
//!
//! This crate models the tensor as a 2-D region, AuthBlocks as
//! contiguous runs of `u` elements in row-major ([`Orientation::Horizontal`])
//! or column-major ([`Orientation::Vertical`]) linearisation, aligned to
//! each *producer* tile (hashes are computed as the ofmap streams out,
//! paper §4.2), and provides:
//!
//! * three interchangeable counting back-ends ([`count`]): a brute-force
//!   per-element reference, an `O(tile height)` row-range union, and the
//!   paper's closed-form **linear-congruence** solver built on a
//!   Euclidean floor-sum ([`congruence`]) — `O(log)` per tile;
//! * whole-tensor overhead evaluation over tile grids ([`grid`],
//!   [`optimize::evaluate_assignment`]);
//! * the exhaustive orientation × size search for the optimal
//!   assignment, with `tile-as-an-AuthBlock` and *rehash* as the
//!   baselines it must beat ([`optimize`]).
//!
//! # Example: the paper's Fig. 8/9 geometry
//!
//! ```
//! use secureloop_authblock::{
//!     count::count_blocks, BlockAssignment, Orientation, Region, TileRect,
//! };
//!
//! // h = 30, w_i = 30 producer region; the consumer tile is 30x20.
//! let region = Region::new(30, 30);
//! let tile = TileRect::new(0, 0, 30, 20);
//! // Vertical AuthBlocks of size 300 = h x (w_i - w_j) divide evenly:
//! let assign = BlockAssignment::new(Orientation::Vertical, 300);
//! let c = count_blocks(region, tile, assign);
//! assert_eq!(c.fetched_elems, 600); // no redundant data
//! assert_eq!(c.blocks, 2);
//! ```

pub mod channel;
pub mod congruence;
pub mod count;
pub mod grid;
pub mod lattice;
pub mod optimize;

pub use channel::{count_channel_blocks, ChannelRequest};
pub use count::BlockCount;
pub use grid::TileGrid;
pub use lattice::{BlockAssignment, Orientation, Region, TileRect};
pub use optimize::{
    evaluate_assignment, optimize, sweep, AccessPattern, AssignmentChoice, AssignmentProblem,
    OverheadBreakdown, SplitOverhead, Strategy,
};
