//! AuthBlock assignment strategies and the exhaustive
//! orientation × size optimiser (paper §4.2).

use secureloop_telemetry::{self as telemetry, Counter, Timer};

use crate::count::count_blocks;
use crate::grid::TileGrid;
use crate::lattice::{BlockAssignment, Orientation, Region, TileRect};

static OPTIMIZE_RUNS: Counter = Counter::new("authblock.optimize_runs");
static CANDIDATES_CONSIDERED: Counter = Counter::new("authblock.candidates_considered");
static CHOSEN_REDUNDANT_BITS: Counter = Counter::new("authblock.chosen_redundant_bits");
static OPTIMIZE_TIMER: Timer = Timer::new("authblock.optimize");

fn strategy_name(s: Strategy) -> &'static str {
    match s {
        Strategy::TileAsAuthBlock => "tile_as_authblock",
        Strategy::Assigned(_) => "assigned",
        Strategy::Rehash => "rehash",
        Strategy::ReaderAligned => "reader_aligned",
    }
}

/// The additional off-chip traffic caused by memory authentication,
/// broken down as in paper Fig. 11(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OverheadBreakdown {
    /// Hash (tag) traffic in bits — tags written when blocks are hashed
    /// and read back for every verification.
    pub hash_bits: u64,
    /// Redundant data reads in bits: elements fetched only for
    /// integrity verification.
    pub redundant_bits: u64,
    /// Rehashing traffic in bits (full re-read + re-write of the
    /// tensor), zero unless the [`Strategy::Rehash`] fallback is used.
    pub rehash_bits: u64,
}

impl OverheadBreakdown {
    /// Total additional off-chip bits.
    pub fn total_bits(&self) -> u64 {
        self.hash_bits + self.redundant_bits + self.rehash_bits
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &OverheadBreakdown) {
        self.hash_bits += other.hash_bits;
        self.redundant_bits += other.redundant_bits;
        self.rehash_bits += other.rehash_bits;
    }

    /// Component-wise scale (e.g. by the number of channel planes).
    pub fn scaled(&self, factor: u64) -> OverheadBreakdown {
        OverheadBreakdown {
            hash_bits: self.hash_bits * factor,
            redundant_bits: self.redundant_bits * factor,
            rehash_bits: self.rehash_bits * factor,
        }
    }
}

/// Overhead attributed to the producing layer vs the consuming layer
/// of the tensor — the scheduler charges each side's traffic to the
/// layer during whose execution it occurs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SplitOverhead {
    /// Traffic during the producer's execution: hash writes for every
    /// write sweep (including partial-sum epochs and their hash
    /// re-reads).
    pub producer: OverheadBreakdown,
    /// Traffic during the consumer's execution: hash reads, redundant
    /// reads and (if rehashing) the rehash pass.
    pub consumer: OverheadBreakdown,
}

impl SplitOverhead {
    /// Combined overhead.
    pub fn total(&self) -> OverheadBreakdown {
        let mut t = self.producer;
        t.add(&self.consumer);
        t
    }
}

/// One reader of the tensor: a tile grid swept `sweeps` times
/// (the refetch multiplier the loopnest analysis computed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessPattern {
    /// The reader's tile grid (possibly overlapping — halos).
    pub grid: TileGrid,
    /// How many times the whole grid is fetched.
    pub sweeps: u64,
}

/// A tensor with one producer tiling and any number of readers.
///
/// AuthBlocks are aligned per producer tile: hashes are computed as the
/// producer streams the data out, so a block never spans two producer
/// tiles (paper §4.2, "assign horizontal AuthBlocks to fully cover
/// tile_i").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AssignmentProblem {
    /// One channel plane of the tensor (callers multiply plane counts).
    pub region: Region,
    /// The producer's (non-overlapping) tile grid.
    pub producer_grid: TileGrid,
    /// Tag-traffic sweeps on the producer side: write epochs plus
    /// partial-sum re-read epochs (each moves every block's tag once).
    /// Zero for tensors written outside the measured execution (weights
    /// and segment-boundary inputs, whose provisioning is TEE-entry
    /// cost, paper §5.2).
    pub producer_write_sweeps: u64,
    /// The readers (consumer side).
    pub readers: Vec<AccessPattern>,
    /// Data word size in bits.
    pub word_bits: u32,
    /// Truncated tag size in bits (the paper's evaluation corresponds to
    /// 64-bit tags).
    pub tag_bits: u32,
}

/// An AuthBlock strategy for one tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Prior work's baseline [18, 19]: each producer tile is one
    /// AuthBlock.
    TileAsAuthBlock,
    /// A uniform orientation × size lattice aligned per producer tile
    /// (the paper's search space).
    Assigned(BlockAssignment),
    /// Give up on a unified assignment: re-read, re-hash and re-write
    /// the whole tensor between producer and consumer (paper §3.2.1).
    /// After rehashing, each *reader* tile is its own AuthBlock.
    Rehash,
    /// Each *reader* tile is its own AuthBlock, provisioned that way
    /// from the start. Only available for tensors written outside the
    /// measured execution (`producer_write_sweeps == 0`: weights and
    /// segment-boundary inputs) — overlapping reader tiles (halos) are
    /// duplicated at provisioning time, which costs off-chip *storage*
    /// but no runtime traffic. This is prior work's
    /// "tile-as-an-AuthBlock" for host-provisioned data [18, 19].
    ReaderAligned,
}

/// The optimiser's verdict for one tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssignmentChoice {
    /// Chosen strategy.
    pub strategy: Strategy,
    /// Its overhead, split by side.
    pub overhead: SplitOverhead,
}

fn producer_tiles(problem: &AssignmentProblem) -> Vec<TileRect> {
    problem.producer_grid.tiles(problem.region).collect()
}

/// Count blocks/fetched for `reader_tile` against per-producer-tile
/// lattices with assignment `assign` (`None` = tile-as-AuthBlock).
fn reader_tile_cost(
    producers: &[TileRect],
    reader_tile: TileRect,
    assign: Option<BlockAssignment>,
) -> (u64, u64) {
    let mut blocks = 0u64;
    let mut fetched = 0u64;
    for p in producers {
        let Some(sub) = reader_tile.intersect(p) else {
            continue;
        };
        match assign {
            None => {
                // Tile-as-AuthBlock: the whole producer tile is one block.
                blocks += 1;
                fetched += p.elems();
            }
            Some(a) => {
                // Lattice local to the producer tile.
                let local_region = Region::new(p.rows, p.cols);
                let local_tile =
                    TileRect::new(sub.row0 - p.row0, sub.col0 - p.col0, sub.rows, sub.cols);
                let c = count_blocks(local_region, local_tile, a);
                blocks += c.blocks;
                fetched += c.fetched_elems;
            }
        }
    }
    (blocks, fetched)
}

/// Evaluate the overhead of `strategy` on `problem`, split into the
/// producer-side and consumer-side shares.
pub fn evaluate_assignment(problem: &AssignmentProblem, strategy: Strategy) -> SplitOverhead {
    let word = u64::from(problem.word_bits);
    let tag = u64::from(problem.tag_bits);
    let producers = producer_tiles(problem);
    let mut out = SplitOverhead::default();

    match strategy {
        Strategy::TileAsAuthBlock | Strategy::Assigned(_) => {
            let assign = match strategy {
                Strategy::Assigned(a) => Some(a),
                _ => None,
            };
            // Producer-side hash traffic: one tag per block per
            // write/psum sweep.
            let producer_blocks: u64 = producers
                .iter()
                .map(|p| match assign {
                    None => 1,
                    Some(a) => a.blocks_in(Region::new(p.rows, p.cols)),
                })
                .sum();
            out.producer.hash_bits += producer_blocks * tag * problem.producer_write_sweeps;

            for reader in &problem.readers {
                for t in reader.grid.tiles(problem.region) {
                    let (blocks, fetched) = reader_tile_cost(&producers, t, assign);
                    out.consumer.hash_bits += blocks * tag * reader.sweeps;
                    out.consumer.redundant_bits += (fetched - t.elems()) * word * reader.sweeps;
                }
            }
        }
        Strategy::ReaderAligned => {
            assert_eq!(
                problem.producer_write_sweeps, 0,
                "ReaderAligned requires an offline-provisioned tensor"
            );
            for reader in &problem.readers {
                let tiles = reader.grid.tiles(problem.region).count() as u64;
                out.consumer.hash_bits += tiles * tag * reader.sweeps;
            }
        }
        Strategy::Rehash => {
            // Producer writes with tile-as-AuthBlock on its own grid.
            out.producer.hash_bits += producers.len() as u64 * tag * problem.producer_write_sweeps;
            // Rehash pass: read everything back (with its hashes), then
            // write it out re-blocked per reader tile. Overlapping
            // reader tiles duplicate their halo data on the rewrite.
            let region_bits = problem.region.elems() * word;
            out.consumer.rehash_bits += region_bits + producers.len() as u64 * tag;
            for reader in &problem.readers {
                let rewrite_elems: u64 = reader.grid.tiles(problem.region).map(|t| t.elems()).sum();
                let tiles = reader.grid.tiles(problem.region).count() as u64;
                out.consumer.rehash_bits += rewrite_elems * word + tiles * tag;
                // Subsequent reads are perfectly aligned: hash only.
                out.consumer.hash_bits += tiles * tag * reader.sweeps;
            }
        }
    }
    out
}

/// Candidate block sizes for the exhaustive sweep: every size up to 64,
/// a linear ladder beyond, plus geometry-derived sizes (divisors and
/// small multiples of tile widths/steps and the `h × (wᵢ − wⱼ)` family
/// where the paper's Fig. 9 finds its optima), capped at `cap`.
fn candidate_sizes(problem: &AssignmentProblem, cap: u64) -> Vec<u64> {
    let mut cands: Vec<u64> = (1..=64.min(cap)).collect();
    let mut v = 128u64;
    while v <= cap {
        cands.push(v);
        v += 64;
    }
    let mut geometry = vec![
        problem.region.w,
        problem.region.h,
        problem.producer_grid.tile_w,
        problem.producer_grid.tile_h,
        problem.producer_grid.tile_w * problem.producer_grid.tile_h,
    ];
    for r in &problem.readers {
        geometry.push(r.grid.tile_w);
        geometry.push(r.grid.tile_h);
        geometry.push(r.grid.step_w);
        geometry.push(r.grid.step_h);
        if problem.producer_grid.tile_w > r.grid.tile_w {
            geometry.push(problem.region.h * (problem.producer_grid.tile_w - r.grid.tile_w));
        }
        if r.grid.tile_w > r.grid.step_w {
            geometry.push(r.grid.tile_w - r.grid.step_w);
        }
    }
    for g in geometry {
        if g == 0 {
            continue;
        }
        for mult in 1..=4u64 {
            let s = g * mult;
            if s > 0 && s <= cap {
                cands.push(s);
            }
        }
        // Divisors of the geometry value capture alignment sweet spots.
        let mut d = 1;
        while d * d <= g {
            if g % d == 0 {
                if d <= cap {
                    cands.push(d);
                }
                if g / d <= cap {
                    cands.push(g / d);
                }
            }
            d += 1;
        }
    }
    cands.sort_unstable();
    cands.dedup();
    cands
}

/// Evaluate every candidate size of one orientation and return the
/// `(size, overhead)` curve — the API behind Fig. 9-style analyses for
/// arbitrary tensors. The candidate set matches [`optimize`]'s.
pub fn sweep(
    problem: &AssignmentProblem,
    orientation: Orientation,
) -> Vec<(u64, OverheadBreakdown)> {
    let cap = (problem.producer_grid.tile_h * problem.producer_grid.tile_w).min(4096);
    candidate_sizes(problem, cap)
        .into_iter()
        .map(|size| {
            let o = evaluate_assignment(
                problem,
                Strategy::Assigned(BlockAssignment::new(orientation, size)),
            );
            (size, o.total())
        })
        .collect()
}

/// How many `count_blocks` evaluations `optimize` may spend per tensor.
/// Large reader grids thin the candidate list to stay within budget
/// (geometry-derived candidates are kept).
const OPTIMIZE_BUDGET: u64 = 200_000;

/// Exhaustively search orientations × candidate sizes, compare against
/// the tile-as-AuthBlock and rehash baselines, and return the strategy
/// with the least total additional off-chip traffic.
pub fn optimize(problem: &AssignmentProblem) -> AssignmentChoice {
    OPTIMIZE_RUNS.incr();
    let mut span = telemetry::span(
        "authblock",
        format!("{}x{}", problem.region.h, problem.region.w),
    )
    .with_timer(&OPTIMIZE_TIMER);
    // Strategies evaluated this run, flushed to the global counter once.
    let mut considered = 2u64; // tile-as-AuthBlock + rehash baselines

    let cap = (problem.producer_grid.tile_h * problem.producer_grid.tile_w).min(4096);
    let mut best = AssignmentChoice {
        strategy: Strategy::TileAsAuthBlock,
        overhead: evaluate_assignment(problem, Strategy::TileAsAuthBlock),
    };
    let rehash = evaluate_assignment(problem, Strategy::Rehash);
    if rehash.total().total_bits() < best.overhead.total().total_bits() {
        best = AssignmentChoice {
            strategy: Strategy::Rehash,
            overhead: rehash,
        };
    }
    if problem.producer_write_sweeps == 0 {
        considered += 1;
        let aligned = evaluate_assignment(problem, Strategy::ReaderAligned);
        if aligned.total().total_bits() < best.overhead.total().total_bits() {
            best = AssignmentChoice {
                strategy: Strategy::ReaderAligned,
                overhead: aligned,
            };
        }
    }

    let mut cands = candidate_sizes(problem, cap);
    let tiles_per_eval: u64 = problem
        .readers
        .iter()
        .map(|r| r.grid.len())
        .sum::<u64>()
        .max(1)
        + problem.producer_grid.len();
    let max_cands = (OPTIMIZE_BUDGET / (2 * tiles_per_eval)).max(16) as usize;
    if cands.len() > max_cands {
        // Keep every k-th candidate; alignment sweet spots from the
        // geometry set remain dense at the small end where they matter.
        let stride = cands.len().div_ceil(max_cands);
        cands = cands.into_iter().step_by(stride).collect();
    }

    for orientation in Orientation::ALL {
        considered += cands.len() as u64;
        for &size in &cands {
            let a = BlockAssignment::new(orientation, size);
            let o = evaluate_assignment(problem, Strategy::Assigned(a));
            if o.total().total_bits() < best.overhead.total().total_bits() {
                best = AssignmentChoice {
                    strategy: Strategy::Assigned(a),
                    overhead: o,
                };
            }
        }
    }

    CANDIDATES_CONSIDERED.add(considered);
    CHOSEN_REDUNDANT_BITS.add(best.overhead.total().redundant_bits);
    span.add_field("strategy", strategy_name(best.strategy));
    span.add_field("candidates", considered);
    span.add_field("redundant_bits", best.overhead.total().redundant_bits);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(o: SplitOverhead) -> u64 {
        o.total().total_bits()
    }

    /// The paper's Fig. 8/9 setup: producer writes one 30x30 tile, a
    /// consumer reads 30x20 tiles stepping 20 (second tile clipped to
    /// 30x10 — the misaligned read).
    fn fig9_problem() -> AssignmentProblem {
        let region = Region::new(30, 30);
        AssignmentProblem {
            region,
            producer_grid: TileGrid::covering(region, 30, 30),
            producer_write_sweeps: 1,
            readers: vec![AccessPattern {
                grid: TileGrid::covering(region, 30, 20),
                sweeps: 1,
            }],
            word_bits: 8,
            tag_bits: 64,
        }
    }

    #[test]
    fn optimal_beats_tile_as_authblock() {
        let p = fig9_problem();
        let tile = evaluate_assignment(&p, Strategy::TileAsAuthBlock);
        let best = optimize(&p);
        assert!(total(best.overhead) <= total(tile));
        // The misaligned reader makes tile-as-AuthBlock fetch the whole
        // region for the 10-wide second tile: large redundancy.
        assert!(tile.consumer.redundant_bits > 0);
    }

    #[test]
    fn fig9_vertical_300_eliminates_redundancy() {
        let p = fig9_problem();
        let o = evaluate_assignment(
            &p,
            Strategy::Assigned(BlockAssignment::new(Orientation::Vertical, 300)),
        );
        // Reader tiles at columns 0 (30x20) and 20 (30x10): vertical
        // blocks of 300 = 30x10 columns align with both boundaries.
        assert_eq!(o.consumer.redundant_bits, 0);
        assert_eq!(o.consumer.rehash_bits, 0);
        // 3 blocks in the region: written once + read across tiles.
        assert!(o.total().hash_bits >= 3 * 64);
    }

    #[test]
    fn hash_traffic_shrinks_with_block_size() {
        let p = fig9_problem();
        let small = evaluate_assignment(
            &p,
            Strategy::Assigned(BlockAssignment::new(Orientation::Horizontal, 1)),
        );
        let large = evaluate_assignment(
            &p,
            Strategy::Assigned(BlockAssignment::new(Orientation::Horizontal, 30)),
        );
        assert!(small.total().hash_bits > large.total().hash_bits);
        assert_eq!(small.consumer.redundant_bits, 0); // size-1 never overfetches
    }

    #[test]
    fn sweeps_scale_reader_overhead() {
        let mut p = fig9_problem();
        let once = evaluate_assignment(&p, Strategy::TileAsAuthBlock);
        p.readers[0].sweeps = 3;
        let thrice = evaluate_assignment(&p, Strategy::TileAsAuthBlock);
        assert_eq!(
            thrice.consumer.redundant_bits,
            3 * once.consumer.redundant_bits
        );
        // Producer side is unaffected by reader sweeps.
        assert_eq!(thrice.producer, once.producer);
    }

    #[test]
    fn rehash_pays_two_full_passes_on_consumer_side() {
        let p = fig9_problem();
        let r = evaluate_assignment(&p, Strategy::Rehash);
        // Read 900 + rewrite 900 elements at 8 bits: at least 14400 bits.
        assert!(r.consumer.rehash_bits >= 2 * 900 * 8);
        assert_eq!(r.consumer.redundant_bits, 0);
        assert_eq!(r.producer.rehash_bits, 0);
    }

    #[test]
    fn psum_sweeps_charge_producer_hash_traffic() {
        let mut p = fig9_problem();
        p.producer_write_sweeps = 5; // 1 write + 4 psum round trips
        let o = evaluate_assignment(
            &p,
            Strategy::Assigned(BlockAssignment::new(Orientation::Horizontal, 30)),
        );
        // 30 blocks x 64 bits x 5 sweeps on the producer side.
        assert_eq!(o.producer.hash_bits, 30 * 64 * 5);
    }

    #[test]
    fn halo_reader_with_aligned_blocks() {
        // 11x11 ifmap read with 5x5 windows stepping 3 (halo = 2).
        let region = Region::new(11, 11);
        let p = AssignmentProblem {
            region,
            producer_grid: TileGrid::covering(region, 11, 11),
            producer_write_sweeps: 1,
            readers: vec![AccessPattern {
                grid: TileGrid::covering_with_halo(region, 5, 5, 3, 3),
                sweeps: 1,
            }],
            word_bits: 8,
            tag_bits: 64,
        };
        // Unit blocks: zero redundancy even with halos.
        let unit = evaluate_assignment(
            &p,
            Strategy::Assigned(BlockAssignment::new(Orientation::Horizontal, 1)),
        );
        assert_eq!(unit.consumer.redundant_bits, 0);
        // Whole-region block: every one of the 9 reads fetches all 121
        // elements.
        let whole = evaluate_assignment(
            &p,
            Strategy::Assigned(BlockAssignment::new(Orientation::Horizontal, 121)),
        );
        let fetched_total = 9 * 121 * 8;
        let needed: u64 = p.readers[0].grid.tiles(region).map(|t| t.elems() * 8).sum();
        assert_eq!(whole.consumer.redundant_bits, fetched_total - needed);
        // The optimiser must find something at least as good as either.
        let best = optimize(&p);
        assert!(total(best.overhead) <= total(unit));
        assert!(total(best.overhead) <= total(whole));
    }

    #[test]
    fn optimizer_considers_rehash_fallback() {
        // A pathological producer tiling (1-wide columns) against a
        // row-reader swept many times: the optimiser must at worst
        // match tile-as-AuthBlock.
        let region = Region::new(64, 64);
        let p = AssignmentProblem {
            region,
            producer_grid: TileGrid::covering(region, 64, 1),
            producer_write_sweeps: 1,
            readers: vec![AccessPattern {
                grid: TileGrid::covering(region, 1, 64),
                sweeps: 50,
            }],
            word_bits: 8,
            tag_bits: 64,
        };
        let best = optimize(&p);
        let tile = evaluate_assignment(&p, Strategy::TileAsAuthBlock);
        assert!(total(best.overhead) <= total(tile));
    }

    #[test]
    fn aligned_case_tile_as_authblock_is_already_good() {
        // Producer and consumer tilings match: tile-as-AuthBlock has no
        // redundancy and minimal hash count; the optimiser must not do
        // worse.
        let region = Region::new(32, 32);
        let grid = TileGrid::covering(region, 8, 8);
        let p = AssignmentProblem {
            region,
            producer_grid: grid,
            producer_write_sweeps: 1,
            readers: vec![AccessPattern { grid, sweeps: 1 }],
            word_bits: 8,
            tag_bits: 64,
        };
        let tile = evaluate_assignment(&p, Strategy::TileAsAuthBlock);
        assert_eq!(tile.consumer.redundant_bits, 0);
        let best = optimize(&p);
        assert!(total(best.overhead) <= total(tile));
    }

    #[test]
    fn sweep_contains_the_optimum() {
        let p = fig9_problem();
        let best = optimize(&p);
        for orientation in Orientation::ALL {
            let curve = sweep(&p, orientation);
            assert!(!curve.is_empty());
            // Monotone non-increasing candidate coverage: every curve
            // point is >= the global optimum.
            for (_, o) in &curve {
                assert!(o.total_bits() >= best.overhead.total().total_bits());
            }
            // Hash bits shrink (weakly) as size grows.
            let first_hash = curve.first().unwrap().1.hash_bits;
            let last_hash = curve.last().unwrap().1.hash_bits;
            assert!(last_hash <= first_hash);
        }
        // The optimum value is attained somewhere in one of the sweeps
        // (unless a non-Assigned strategy won).
        if let Strategy::Assigned(a) = best.strategy {
            let curve = sweep(&p, a.orientation);
            assert!(
                curve
                    .iter()
                    .any(|&(u, o)| u == a.size
                        && o.total_bits() == best.overhead.total().total_bits())
            );
        }
    }

    #[test]
    fn scaled_multiplies_all_components() {
        let o = OverheadBreakdown {
            hash_bits: 3,
            redundant_bits: 5,
            rehash_bits: 7,
        };
        let s = o.scaled(4);
        assert_eq!(s.hash_bits, 12);
        assert_eq!(s.redundant_bits, 20);
        assert_eq!(s.rehash_bits, 28);
        assert_eq!(s.total_bits(), 60);
    }
}
