//! Overflow-hardening property tests: tile and halo extents near
//! `u32::MAX` (linear indices and block sizes approaching `2^64`) must
//! neither wrap nor panic in the closed-form counter or the
//! linear-congruence machinery underneath it.
//!
//! At this scale the enumeration oracles (`count_blocks_brute`,
//! `count_blocks_rows`) are infeasible — a single tile has ~2^64
//! elements — so the invariants here are closed-form cross-checks:
//! range bounds, unit-block exactness, whole-region degeneracy,
//! row-split subadditivity, orientation-transpose symmetry, and the
//! residue-count partition identities that the gap formula relies on.

use proptest::prelude::*;
// The crate's `Strategy` enum shadows proptest's trait of the same
// name; re-import the trait anonymously so combinator methods resolve.
use proptest::strategy::Strategy as _;

use secureloop_authblock::congruence::{count_residues_in, count_residues_le, floor_sum_i128};
use secureloop_authblock::count::count_blocks;
use secureloop_authblock::{BlockAssignment, Orientation, Region, TileRect};

const NEAR: u64 = u32::MAX as u64;

/// Regions and tiles with extents in the top half of the `u32` range,
/// plus a block size drawn across every interesting scale (unit, small,
/// near the row width, near half the region, near the whole region).
fn extreme_geometry() -> impl proptest::strategy::Strategy<Value = (Region, TileRect, u64)> {
    let extent = || prop_oneof![NEAR - 64..=NEAR, (NEAR / 2)..=NEAR];
    (extent(), extent()).prop_flat_map(|(h, w)| {
        let elems = h * w; // < 2^64 for u32-range extents
        (
            Just(Region::new(h, w)),
            (0..h, 0..w).prop_flat_map(move |(r0, c0)| {
                (1..=h - r0, 1..=w - c0)
                    .prop_map(move |(rows, cols)| TileRect::new(r0, c0, rows, cols))
            }),
            prop_oneof![
                Just(1u64),
                2u64..1024,
                (w - 64)..=(w + 64),
                (elems / 2 - 64)..=(elems / 2 + 64),
                (elems - 64)..=elems,
            ],
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn extreme_extents_stay_in_bounds((region, tile, u) in extreme_geometry()) {
        for o in Orientation::ALL {
            let assign = BlockAssignment::new(o, u);
            let c = count_blocks(region, tile, assign);
            prop_assert!(c.blocks >= 1);
            prop_assert!(c.blocks <= assign.blocks_in(region));
            prop_assert!(c.fetched_elems >= tile.elems());
            prop_assert!(c.fetched_elems <= region.elems());
        }
    }

    #[test]
    fn unit_blocks_are_exact_at_scale((region, tile, _u) in extreme_geometry()) {
        for o in Orientation::ALL {
            let c = count_blocks(region, tile, BlockAssignment::new(o, 1));
            prop_assert_eq!(c.blocks, tile.elems());
            prop_assert_eq!(c.fetched_elems, tile.elems());
        }
    }

    #[test]
    fn whole_region_is_one_block((region, tile, _u) in extreme_geometry()) {
        for o in Orientation::ALL {
            let c = count_blocks(region, tile, BlockAssignment::new(o, region.elems()));
            prop_assert_eq!(c.blocks, 1);
            prop_assert_eq!(c.fetched_elems, region.elems());
        }
    }

    #[test]
    fn row_split_is_subadditive((region, tile, u) in extreme_geometry()) {
        // Splitting a tile into top/bottom halves can only split blocks
        // at the seam: union <= sum of parts, union >= each part.
        prop_assume!(tile.rows >= 2);
        let assign = BlockAssignment::new(Orientation::Horizontal, u);
        let top_rows = tile.rows / 2;
        let top = TileRect::new(tile.row0, tile.col0, top_rows, tile.cols);
        let bottom = TileRect::new(
            tile.row0 + top_rows,
            tile.col0,
            tile.rows - top_rows,
            tile.cols,
        );
        let whole = count_blocks(region, tile, assign);
        let a = count_blocks(region, top, assign);
        let b = count_blocks(region, bottom, assign);
        prop_assert!(whole.blocks <= a.blocks + b.blocks);
        prop_assert!(whole.blocks >= a.blocks.max(b.blocks));
    }

    #[test]
    fn orientation_transposes_consistently((region, tile, u) in extreme_geometry()) {
        // Vertical counting on the transposed geometry is by definition
        // horizontal counting on the original.
        let h = count_blocks(region, tile, BlockAssignment::new(Orientation::Horizontal, u));
        let t_region = Region::new(region.w, region.h);
        let t_tile = TileRect::new(tile.col0, tile.row0, tile.cols, tile.rows);
        let v = count_blocks(t_region, t_tile, BlockAssignment::new(Orientation::Vertical, u));
        prop_assert_eq!(h, v);
    }

    #[test]
    fn block_count_monotone_in_size((region, tile, u) in extreme_geometry()) {
        if let Some(u2) = u.checked_mul(2) {
            let c1 = count_blocks(region, tile, BlockAssignment::new(Orientation::Horizontal, u));
            let c2 = count_blocks(region, tile, BlockAssignment::new(Orientation::Horizontal, u2));
            prop_assert!(c2.blocks <= c1.blocks);
        }
    }
}

/// Congruence-layer operands at the scale the counter feeds it for
/// near-`u32::MAX` geometry: moduli up to `2^64`, offsets up to the
/// modulus, progression lengths up to `u32::MAX` rows.
fn residue_operands() -> impl proptest::strategy::Strategy<Value = (u64, u64, u64, u64, u64)> {
    (
        prop_oneof![1u64..=NEAR, NEAR - 16..=NEAR],
        any::<u64>(),
        any::<u64>(),
        prop_oneof![1u64..1024, (u64::MAX / 2)..u64::MAX, NEAR - 16..=NEAR + 16],
    )
        .prop_flat_map(|(n, a, b, m)| (Just(n), Just(a), Just(b), Just(m), 0..m))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn residue_counts_partition((n, a, b, m, t) in residue_operands()) {
        // Every i lands in exactly one of [0, t] and [t+1, m-1].
        let le_t = count_residues_le(n, a, b, m, t);
        prop_assert!(le_t <= n);
        let above = if t + 1 <= m - 1 {
            count_residues_in(n, a, b, m, t + 1, m - 1)
        } else {
            0
        };
        prop_assert_eq!(le_t + above, n);
        prop_assert_eq!(count_residues_le(n, a, b, m, m - 1), n);
    }

    #[test]
    fn residue_counts_are_monotone((n, a, b, m, t) in residue_operands()) {
        if t > 0 {
            prop_assert!(
                count_residues_le(n, a, b, m, t - 1) <= count_residues_le(n, a, b, m, t)
            );
        }
    }

    #[test]
    fn floor_sum_i128_closed_form(
        n in 0u64..=NEAR,
        m in 1u64..=u64::MAX,
        ka in 0u64..8,
        kb in 0u64..8,
    ) {
        // When m | a and m | b the sum telescopes exactly:
        // sum floor((m*ka*i + m*kb)/m) = ka*n(n-1)/2 + kb*n.
        let (n, m, ka, kb) = (n as i128, m as i128, ka as i128, kb as i128);
        let got = floor_sum_i128(n, m, m * ka, m * kb);
        prop_assert_eq!(got, ka * n * (n - 1) / 2 + kb * n);
    }
}
