//! Property tests: the closed-form congruence counter must agree with
//! brute-force block enumeration on arbitrary geometry (the paper's
//! central §4.2 claim is that the analytical formulation is exact, not
//! approximate).

use proptest::prelude::*;
// The crate's `Strategy` enum shadows proptest's trait of the same name;
// re-import the trait anonymously so combinator methods resolve.
use proptest::strategy::Strategy as _;

use secureloop_authblock::count::{count_blocks, count_blocks_brute, count_blocks_rows};
use secureloop_authblock::{
    evaluate_assignment, AccessPattern, AssignmentProblem, BlockAssignment, Orientation, Region,
    Strategy, TileGrid, TileRect,
};

fn geometry() -> impl proptest::strategy::Strategy<Value = (Region, TileRect, BlockAssignment)> {
    (1u64..40, 1u64..40).prop_flat_map(|(h, w)| {
        (
            Just(Region::new(h, w)),
            (0..h, 0..w).prop_flat_map(move |(r0, c0)| {
                (1..=h - r0, 1..=w - c0)
                    .prop_map(move |(rows, cols)| TileRect::new(r0, c0, rows, cols))
            }),
            (
                1u64..=h * w + 3,
                prop_oneof![Just(Orientation::Horizontal), Just(Orientation::Vertical)],
            )
                .prop_map(|(u, o)| BlockAssignment::new(o, u)),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn congruence_matches_brute_force((region, tile, assign) in geometry()) {
        let brute = count_blocks_brute(region, tile, assign);
        let rows = count_blocks_rows(region, tile, assign);
        let fast = count_blocks(region, tile, assign);
        prop_assert_eq!(brute, rows);
        prop_assert_eq!(brute, fast);
    }

    #[test]
    fn fetched_covers_tile((region, tile, assign) in geometry()) {
        let c = count_blocks(region, tile, assign);
        prop_assert!(c.fetched_elems >= tile.elems());
        prop_assert!(c.fetched_elems <= region.elems());
        prop_assert!(c.blocks >= 1);
        prop_assert!(c.blocks <= assign.blocks_in(region));
    }

    #[test]
    fn unit_blocks_are_exact((region, tile, _a) in geometry()) {
        for o in Orientation::ALL {
            let c = count_blocks(region, tile, BlockAssignment::new(o, 1));
            prop_assert_eq!(c.blocks, tile.elems());
            prop_assert_eq!(c.fetched_elems, tile.elems());
        }
    }

    #[test]
    fn block_count_monotone_in_size_inverse((region, tile, assign) in geometry()) {
        // Doubling the block size cannot increase the number of blocks
        // by more than it decreases the hash count: blocks(u) >= blocks(2u).
        let a2 = BlockAssignment::new(assign.orientation, assign.size * 2);
        let c1 = count_blocks(region, tile, assign);
        let c2 = count_blocks(region, tile, a2);
        prop_assert!(c2.blocks <= c1.blocks);
    }
}

fn problem() -> impl proptest::strategy::Strategy<Value = AssignmentProblem> {
    (2u64..24, 2u64..24).prop_flat_map(|(h, w)| {
        (1u64..=h, 1u64..=w, 1u64..=h, 1u64..=w, 1u64..4).prop_map(
            move |(pt_h, pt_w, rt_h, rt_w, sweeps)| {
                let region = Region::new(h, w);
                AssignmentProblem {
                    region,
                    producer_grid: TileGrid::covering(region, pt_h, pt_w),
                    producer_write_sweeps: 1,
                    readers: vec![AccessPattern {
                        grid: TileGrid::covering(region, rt_h, rt_w),
                        sweeps,
                    }],
                    word_bits: 8,
                    tag_bits: 64,
                }
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn optimizer_never_worse_than_baselines(p in problem()) {
        let best = secureloop_authblock::optimize(&p);
        let tile = evaluate_assignment(&p, Strategy::TileAsAuthBlock);
        let rehash = evaluate_assignment(&p, Strategy::Rehash);
        prop_assert!(best.overhead.total().total_bits() <= tile.total().total_bits());
        prop_assert!(best.overhead.total().total_bits() <= rehash.total().total_bits());
    }

    #[test]
    fn assigned_strategies_have_no_rehash_traffic(p in problem()) {
        let o = evaluate_assignment(
            &p,
            Strategy::Assigned(BlockAssignment::new(Orientation::Horizontal, 4)),
        );
        prop_assert_eq!(o.total().rehash_bits, 0);
    }
}

/// Randomized halo geometries: a reader whose tiles overlap (window
/// larger than step — the convolution-input case of paper Fig. 10).
fn halo_problem() -> impl proptest::strategy::Strategy<Value = (AssignmentProblem, BlockAssignment)>
{
    (4u64..20, 4u64..20).prop_flat_map(|(h, w)| {
        (
            1u64..=h,
            1u64..=w,
            (2u64..=h.min(6), 2u64..=w.min(6))
                .prop_flat_map(|(win_h, win_w)| (Just(win_h), Just(win_w), 1..win_h, 1..win_w)),
            prop_oneof![Just(Orientation::Horizontal), Just(Orientation::Vertical)],
            1u64..=24,
            1u64..4,
        )
            .prop_map(
                move |(pt_h, pt_w, (win_h, win_w, step_h, step_w), orientation, size, sweeps)| {
                    let region = Region::new(h, w);
                    let problem = AssignmentProblem {
                        region,
                        producer_grid: TileGrid::covering(region, pt_h, pt_w),
                        producer_write_sweeps: 1,
                        readers: vec![AccessPattern {
                            grid: TileGrid::covering_with_halo(
                                region, win_h, win_w, step_h, step_w,
                            ),
                            sweeps,
                        }],
                        word_bits: 8,
                        tag_bits: 64,
                    };
                    (problem, BlockAssignment::new(orientation, size))
                },
            )
    })
}

/// Element-by-element enumeration oracle for the consumer side of an
/// assignment: per reader tile, per intersected producer tile, count
/// blocks with `count_blocks_brute` on the producer-local lattice —
/// mirroring `evaluate_assignment`'s decomposition but swapping the
/// closed-form congruence counter for exhaustive enumeration.
fn brute_consumer_overhead(problem: &AssignmentProblem, assign: BlockAssignment) -> (u64, u64) {
    let word = u64::from(problem.word_bits);
    let tag = u64::from(problem.tag_bits);
    let producers: Vec<TileRect> = problem.producer_grid.tiles(problem.region).collect();
    let mut hash_bits = 0u64;
    let mut redundant_bits = 0u64;
    for reader in &problem.readers {
        for t in reader.grid.tiles(problem.region) {
            let mut blocks = 0u64;
            let mut fetched = 0u64;
            for p in &producers {
                let Some(sub) = t.intersect(p) else { continue };
                let local_region = Region::new(p.rows, p.cols);
                let local_tile =
                    TileRect::new(sub.row0 - p.row0, sub.col0 - p.col0, sub.rows, sub.cols);
                let c = count_blocks_brute(local_region, local_tile, assign);
                blocks += c.blocks;
                fetched += c.fetched_elems;
            }
            hash_bits += blocks * tag * reader.sweeps;
            redundant_bits += (fetched - t.elems()) * word * reader.sweeps;
        }
    }
    (hash_bits, redundant_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn halo_geometries_match_the_enumeration_oracle((p, assign) in halo_problem()) {
        let analytical = evaluate_assignment(&p, Strategy::Assigned(assign));
        let (hash_bits, redundant_bits) = brute_consumer_overhead(&p, assign);
        prop_assert_eq!(
            analytical.consumer.hash_bits, hash_bits,
            "hash bits diverge on {:?} with {:?}", p, assign
        );
        prop_assert_eq!(
            analytical.consumer.redundant_bits, redundant_bits,
            "redundant bits diverge on {:?} with {:?}", p, assign
        );
        prop_assert_eq!(analytical.consumer.rehash_bits, 0);
    }

    #[test]
    fn halo_optimizer_never_worse_than_baselines((p, _a) in halo_problem()) {
        let best = secureloop_authblock::optimize(&p);
        let tile = evaluate_assignment(&p, Strategy::TileAsAuthBlock);
        prop_assert!(
            best.overhead.total().total_bits() <= tile.total().total_bits(),
            "optimizer regressed below tile-as-AuthBlock on {:?}", p
        );
    }
}

/// Attention/FC-shaped geometry: regions far from the square-ish
/// conv-typical shapes above. Attention's token projections flatten
/// to tall-skinny `seq x 1` planes, FC layers to flat `1 x d`
/// vectors, and ViT patch embeddings to short-and-wide strips —
/// extents where one axis is 1 and the congruence counter's
/// row/column decomposition degenerates.
fn attention_geometry(
) -> impl proptest::strategy::Strategy<Value = (Region, TileRect, BlockAssignment)> {
    prop_oneof![
        // seq x 1 token plane (attention Q/K/V projections).
        (1u64..320).prop_map(|h| (h, 1u64)),
        // 1 x d channel vector (FC / LLM-decode GEMV).
        (1u64..320).prop_map(|w| (1u64, w)),
        // Short-and-wide strip (ViT patch rows, wide-and-flat FC tiles).
        (1u64..4, 32u64..256),
    ]
    .prop_flat_map(|(h, w)| {
        (
            Just(Region::new(h, w)),
            (0..h, 0..w).prop_flat_map(move |(r0, c0)| {
                (1..=h - r0, 1..=w - c0)
                    .prop_map(move |(rows, cols)| TileRect::new(r0, c0, rows, cols))
            }),
            (
                1u64..=h * w + 3,
                prop_oneof![Just(Orientation::Horizontal), Just(Orientation::Vertical)],
            )
                .prop_map(|(u, o)| BlockAssignment::new(o, u)),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn attention_shapes_match_brute_force((region, tile, assign) in attention_geometry()) {
        let brute = count_blocks_brute(region, tile, assign);
        let rows = count_blocks_rows(region, tile, assign);
        let fast = count_blocks(region, tile, assign);
        prop_assert_eq!(brute, rows, "rows diverge on {:?} {:?} {:?}", region, tile, assign);
        prop_assert_eq!(brute, fast, "fast diverges on {:?} {:?} {:?}", region, tile, assign);
    }

    #[test]
    fn extent_one_axes_are_orientation_invariant((region, tile, assign) in attention_geometry()) {
        // On a 1-wide (or 1-tall) region both orientations walk the
        // same flattened element order, so the counts must agree.
        prop_assume!(region.h == 1 || region.w == 1);
        let h = count_blocks(region, tile, BlockAssignment::new(Orientation::Horizontal, assign.size));
        let v = count_blocks(region, tile, BlockAssignment::new(Orientation::Vertical, assign.size));
        prop_assert_eq!(h, v);
    }
}

/// FC-shaped assignment problems: extent-1 regions where producer and
/// reader grids tile a flat vector (no halo — FC readers are disjoint).
fn fc_problem() -> impl proptest::strategy::Strategy<Value = AssignmentProblem> {
    (prop_oneof![
        (1u64..200).prop_map(|w| (1u64, w)),
        (1u64..200).prop_map(|h| (h, 1u64)),
    ])
    .prop_flat_map(|(h, w)| {
        (1u64..=h, 1u64..=w, 1u64..=h, 1u64..=w, 1u64..4).prop_map(
            move |(pt_h, pt_w, rt_h, rt_w, sweeps)| {
                let region = Region::new(h, w);
                AssignmentProblem {
                    region,
                    producer_grid: TileGrid::covering(region, pt_h, pt_w),
                    producer_write_sweeps: 1,
                    readers: vec![AccessPattern {
                        grid: TileGrid::covering(region, rt_h, rt_w),
                        sweeps,
                    }],
                    word_bits: 8,
                    tag_bits: 64,
                }
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fc_vectors_match_the_enumeration_oracle(p in fc_problem()) {
        let assign = BlockAssignment::new(Orientation::Horizontal, 4);
        let analytical = evaluate_assignment(&p, Strategy::Assigned(assign));
        let (hash_bits, redundant_bits) = brute_consumer_overhead(&p, assign);
        prop_assert_eq!(analytical.consumer.hash_bits, hash_bits, "on {:?}", p);
        prop_assert_eq!(analytical.consumer.redundant_bits, redundant_bits, "on {:?}", p);
    }

    #[test]
    fn fc_optimizer_never_worse_than_baselines(p in fc_problem()) {
        let best = secureloop_authblock::optimize(&p);
        let tile = evaluate_assignment(&p, Strategy::TileAsAuthBlock);
        let rehash = evaluate_assignment(&p, Strategy::Rehash);
        prop_assert!(best.overhead.total().total_bits() <= tile.total().total_bits());
        prop_assert!(best.overhead.total().total_bits() <= rehash.total().total_bits());
    }
}

/// Dilated-convolution halo geometry: reader windows built the way the
/// loopnest footprint model builds them — `(p_t-1)*stride +
/// (taps-1)*dilation + 1` wide, stepping by `p_t*stride` — so spaced
/// taps stretch the window without adding rows read per tap. Regions
/// lean tall-skinny to mirror attention-era feature maps.
fn dilated_halo_problem(
) -> impl proptest::strategy::Strategy<Value = (AssignmentProblem, BlockAssignment)> {
    (8u64..40, 4u64..16).prop_flat_map(|(h, w)| {
        (
            (1u64..=h, 1u64..=w),
            // (output rows per tile, stride, kernel taps, dilation)
            (1u64..4, 1u64..4, 2u64..5, 1u64..5),
            (1u64..4, 1u64..4, 2u64..5, 1u64..5),
            prop_oneof![Just(Orientation::Horizontal), Just(Orientation::Vertical)],
            (1u64..=32, 1u64..4),
        )
            .prop_map(
                move |((pt_h, pt_w), row_geom, col_geom, orientation, (size, sweeps))| {
                    let window = |(pt, s, taps, d): (u64, u64, u64, u64), extent: u64| {
                        let win = ((pt - 1) * s + (taps - 1) * d + 1).min(extent);
                        let step = (pt * s).min(extent);
                        (win, step)
                    };
                    let (win_h, step_h) = window(row_geom, h);
                    let (win_w, step_w) = window(col_geom, w);
                    let region = Region::new(h, w);
                    let problem = AssignmentProblem {
                        region,
                        producer_grid: TileGrid::covering(region, pt_h, pt_w),
                        producer_write_sweeps: 1,
                        readers: vec![AccessPattern {
                            grid: TileGrid::covering_with_halo(
                                region, win_h, win_w, step_h, step_w,
                            ),
                            sweeps,
                        }],
                        word_bits: 8,
                        tag_bits: 64,
                    };
                    (problem, BlockAssignment::new(orientation, size))
                },
            )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dilated_halos_match_the_enumeration_oracle((p, assign) in dilated_halo_problem()) {
        let analytical = evaluate_assignment(&p, Strategy::Assigned(assign));
        let (hash_bits, redundant_bits) = brute_consumer_overhead(&p, assign);
        prop_assert_eq!(
            analytical.consumer.hash_bits, hash_bits,
            "hash bits diverge on {:?} with {:?}", p, assign
        );
        prop_assert_eq!(
            analytical.consumer.redundant_bits, redundant_bits,
            "redundant bits diverge on {:?} with {:?}", p, assign
        );
    }

    #[test]
    fn dilated_halo_optimizer_never_worse((p, _a) in dilated_halo_problem()) {
        let best = secureloop_authblock::optimize(&p);
        let tile = evaluate_assignment(&p, Strategy::TileAsAuthBlock);
        prop_assert!(
            best.overhead.total().total_bits() <= tile.total().total_bits(),
            "optimizer regressed below tile-as-AuthBlock on {:?}", p
        );
    }
}

fn channel_request(
) -> impl proptest::strategy::Strategy<Value = (secureloop_authblock::ChannelRequest, u64)> {
    use secureloop_authblock::ChannelRequest;
    (2u64..8, 2u64..8, 2u64..24).prop_flat_map(|(rows, cols, ch)| {
        (
            (0..rows, 0..cols).prop_flat_map(move |(r0, c0)| {
                (1..=rows - r0, 1..=cols - c0)
                    .prop_map(move |(wr, wc)| TileRect::new(r0, c0, wr, wc))
            }),
            (0..ch).prop_flat_map(move |ch0| (Just(ch0), 1..=ch - ch0)),
            1u64..=rows * cols * ch + 2,
        )
            .prop_map(move |(window, (chan0, chan_count), u)| {
                (
                    ChannelRequest {
                        pixel_rows: rows,
                        pixel_cols: cols,
                        channels: ch,
                        window,
                        chan0,
                        chan_count,
                    },
                    u,
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn channel_major_matches_brute_force((req, u) in channel_request()) {
        use secureloop_authblock::channel::{count_channel_blocks, count_channel_blocks_brute};
        let fast = count_channel_blocks(&req, u);
        let brute = count_channel_blocks_brute(&req, u);
        prop_assert_eq!(fast, brute, "req {:?} u {}", req, u);
        prop_assert!(fast.fetched_elems >= req.needed_elems());
    }
}

/// Grouped-convolution channel requests: the ifmap footprint of a
/// grouped layer spans whole channel groups (`ifmap_tile_channels`
/// rounds the span to group boundaries), so `chan0` and `chan_count`
/// are always multiples of the per-group channel count. The channel
/// dimension is large relative to the pixel plane — the ResNeXt-style
/// regime (many channels, small spatial tiles).
fn grouped_channel_request(
) -> impl proptest::strategy::Strategy<Value = (secureloop_authblock::ChannelRequest, u64)> {
    use secureloop_authblock::ChannelRequest;
    (2u64..6, 2u64..6, 2u64..5, 1u64..8).prop_flat_map(|(rows, cols, groups, per_group)| {
        let ch = groups * per_group;
        (
            (0..rows, 0..cols).prop_flat_map(move |(r0, c0)| {
                (1..=rows - r0, 1..=cols - c0)
                    .prop_map(move |(wr, wc)| TileRect::new(r0, c0, wr, wc))
            }),
            // Span one or more whole groups, starting on a group edge.
            (0..groups).prop_flat_map(move |g0| (Just(g0), 1..=groups - g0)),
            1u64..=rows * cols * ch + 2,
        )
            .prop_map(move |(window, (g0, g_count), u)| {
                (
                    ChannelRequest {
                        pixel_rows: rows,
                        pixel_cols: cols,
                        channels: ch,
                        window,
                        chan0: g0 * per_group,
                        chan_count: g_count * per_group,
                    },
                    u,
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn grouped_channel_spans_match_brute_force((req, u) in grouped_channel_request()) {
        use secureloop_authblock::channel::{count_channel_blocks, count_channel_blocks_brute};
        let fast = count_channel_blocks(&req, u);
        let brute = count_channel_blocks_brute(&req, u);
        prop_assert_eq!(fast, brute, "req {:?} u {}", req, u);
        prop_assert!(fast.fetched_elems >= req.needed_elems());
    }
}
