//! Property tests: the closed-form congruence counter must agree with
//! brute-force block enumeration on arbitrary geometry (the paper's
//! central §4.2 claim is that the analytical formulation is exact, not
//! approximate).

use proptest::prelude::*;
// The crate's `Strategy` enum shadows proptest's trait of the same name;
// re-import the trait anonymously so combinator methods resolve.
use proptest::strategy::Strategy as _;

use secureloop_authblock::count::{count_blocks, count_blocks_brute, count_blocks_rows};
use secureloop_authblock::{
    evaluate_assignment, AccessPattern, AssignmentProblem, BlockAssignment, Orientation, Region,
    Strategy, TileGrid, TileRect,
};

fn geometry() -> impl proptest::strategy::Strategy<Value = (Region, TileRect, BlockAssignment)> {
    (1u64..40, 1u64..40).prop_flat_map(|(h, w)| {
        (
            Just(Region::new(h, w)),
            (0..h, 0..w).prop_flat_map(move |(r0, c0)| {
                (1..=h - r0, 1..=w - c0)
                    .prop_map(move |(rows, cols)| TileRect::new(r0, c0, rows, cols))
            }),
            (
                1u64..=h * w + 3,
                prop_oneof![Just(Orientation::Horizontal), Just(Orientation::Vertical)],
            )
                .prop_map(|(u, o)| BlockAssignment::new(o, u)),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn congruence_matches_brute_force((region, tile, assign) in geometry()) {
        let brute = count_blocks_brute(region, tile, assign);
        let rows = count_blocks_rows(region, tile, assign);
        let fast = count_blocks(region, tile, assign);
        prop_assert_eq!(brute, rows);
        prop_assert_eq!(brute, fast);
    }

    #[test]
    fn fetched_covers_tile((region, tile, assign) in geometry()) {
        let c = count_blocks(region, tile, assign);
        prop_assert!(c.fetched_elems >= tile.elems());
        prop_assert!(c.fetched_elems <= region.elems());
        prop_assert!(c.blocks >= 1);
        prop_assert!(c.blocks <= assign.blocks_in(region));
    }

    #[test]
    fn unit_blocks_are_exact((region, tile, _a) in geometry()) {
        for o in Orientation::ALL {
            let c = count_blocks(region, tile, BlockAssignment::new(o, 1));
            prop_assert_eq!(c.blocks, tile.elems());
            prop_assert_eq!(c.fetched_elems, tile.elems());
        }
    }

    #[test]
    fn block_count_monotone_in_size_inverse((region, tile, assign) in geometry()) {
        // Doubling the block size cannot increase the number of blocks
        // by more than it decreases the hash count: blocks(u) >= blocks(2u).
        let a2 = BlockAssignment::new(assign.orientation, assign.size * 2);
        let c1 = count_blocks(region, tile, assign);
        let c2 = count_blocks(region, tile, a2);
        prop_assert!(c2.blocks <= c1.blocks);
    }
}

fn problem() -> impl proptest::strategy::Strategy<Value = AssignmentProblem> {
    (2u64..24, 2u64..24).prop_flat_map(|(h, w)| {
        (1u64..=h, 1u64..=w, 1u64..=h, 1u64..=w, 1u64..4).prop_map(
            move |(pt_h, pt_w, rt_h, rt_w, sweeps)| {
                let region = Region::new(h, w);
                AssignmentProblem {
                    region,
                    producer_grid: TileGrid::covering(region, pt_h, pt_w),
                    producer_write_sweeps: 1,
                    readers: vec![AccessPattern {
                        grid: TileGrid::covering(region, rt_h, rt_w),
                        sweeps,
                    }],
                    word_bits: 8,
                    tag_bits: 64,
                }
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn optimizer_never_worse_than_baselines(p in problem()) {
        let best = secureloop_authblock::optimize(&p);
        let tile = evaluate_assignment(&p, Strategy::TileAsAuthBlock);
        let rehash = evaluate_assignment(&p, Strategy::Rehash);
        prop_assert!(best.overhead.total().total_bits() <= tile.total().total_bits());
        prop_assert!(best.overhead.total().total_bits() <= rehash.total().total_bits());
    }

    #[test]
    fn assigned_strategies_have_no_rehash_traffic(p in problem()) {
        let o = evaluate_assignment(
            &p,
            Strategy::Assigned(BlockAssignment::new(Orientation::Horizontal, 4)),
        );
        prop_assert_eq!(o.total().rehash_bits, 0);
    }
}

fn channel_request(
) -> impl proptest::strategy::Strategy<Value = (secureloop_authblock::ChannelRequest, u64)> {
    use secureloop_authblock::ChannelRequest;
    (2u64..8, 2u64..8, 2u64..24).prop_flat_map(|(rows, cols, ch)| {
        (
            (0..rows, 0..cols).prop_flat_map(move |(r0, c0)| {
                (1..=rows - r0, 1..=cols - c0)
                    .prop_map(move |(wr, wc)| TileRect::new(r0, c0, wr, wc))
            }),
            (0..ch).prop_flat_map(move |ch0| (Just(ch0), 1..=ch - ch0)),
            1u64..=rows * cols * ch + 2,
        )
            .prop_map(move |(window, (chan0, chan_count), u)| {
                (
                    ChannelRequest {
                        pixel_rows: rows,
                        pixel_cols: cols,
                        channels: ch,
                        window,
                        chan0,
                        chan_count,
                    },
                    u,
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn channel_major_matches_brute_force((req, u) in channel_request()) {
        use secureloop_authblock::channel::{count_channel_blocks, count_channel_blocks_brute};
        let fast = count_channel_blocks(&req, u);
        let brute = count_channel_blocks_brute(&req, u);
        prop_assert_eq!(fast, brute, "req {:?} u {}", req, u);
        prop_assert!(fast.fetched_elems >= req.needed_elems());
    }
}
