//! Cross-validation between the analytical bandwidth model the
//! scheduler uses (paper §4.1) and the cycle-approximate engine
//! simulator fed with a layer's actual DRAM block trace.

use secureloop_arch::Architecture;
use secureloop_crypto::sim::{EngineSim, Request};
use secureloop_crypto::{CryptoConfig, EngineClass};
use secureloop_loopnest::evaluate;
use secureloop_mapper::{search, SearchConfig};
use secureloop_workload::zoo;

/// Replay one layer's per-datatype DRAM traffic through the engine
/// pool and compare with the analytical crypto-limited cycle count.
#[test]
fn engine_simulation_validates_effective_bandwidth() {
    let class = EngineClass::Parallel;
    let arch = Architecture::eyeriss_base().with_crypto(CryptoConfig::new(class, 3));
    let net = zoo::alexnet_conv();
    let layer = &net.layers()[2];
    let best = search(layer, &arch, &SearchConfig::quick())
        .expect("search succeeds")
        .best()
        .expect("found a mapping")
        .clone();
    let eval = evaluate(layer, &arch, &best.0).unwrap();

    // One engine per datatype: simulate each stream separately (the
    // partitioned model) and take the slowest.
    let mut slowest = 0u64;
    for (stream, &bits) in eval.dram_bits_by_dt.iter().enumerate() {
        let sim = EngineSim::new(class.engine(), 1);
        let res = sim.run(&[Request {
            stream,
            arrival: 0,
            bytes: bits / 8,
        }]);
        slowest = slowest.max(res.finish_cycle);
    }

    // The analytical dram_cycles must agree with the simulated drain
    // within one initiation interval per stream (block rounding).
    let analytical = eval.dram_cycles;
    let tol = 3 * class.engine().cycles_per_block() + 16;
    assert!(
        slowest.abs_diff(analytical) <= tol,
        "simulated {slowest} vs analytical {analytical} (tol {tol})"
    );
}

/// The functional AES-GCM must round-trip a tile exactly the way the
/// modelled engine would see it: per-AuthBlock encryption with the
/// address as AAD and a truncated tag.
#[test]
fn functional_gcm_protects_a_tile_stream() {
    use secureloop_crypto::AesGcm;

    let gcm = AesGcm::new(b"secureloop-key00");
    let tile: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
    let block_bytes = 64; // an AuthBlock of u=64 8-bit elements

    let mut stored = Vec::new();
    for (i, chunk) in tile.chunks(block_bytes).enumerate() {
        let mut iv = [0u8; 12];
        iv[..8].copy_from_slice(&(i as u64).to_be_bytes()); // counter
        let addr = (0x8000_0000u64 + (i * block_bytes) as u64).to_be_bytes();
        let (ct, tag) = gcm.encrypt(&iv, chunk, &addr);
        stored.push((iv, addr, ct, tag));
    }

    // Verified read-back reproduces the tile.
    let mut readback = Vec::new();
    for (iv, addr, ct, tag) in &stored {
        readback.extend(gcm.decrypt(iv, ct, addr, tag).expect("tag verifies"));
    }
    assert_eq!(readback, tile);

    // A swapped block (replay at the wrong address) is rejected.
    let (_, addr0, _, _) = &stored[0];
    let (iv1, _, ct1, tag1) = &stored[1];
    assert!(gcm.decrypt(iv1, ct1, addr0, tag1).is_err());
}

/// 30 serial engines ≈ 1 parallel engine (paper §5.2) — checked on the
/// simulator rather than the closed form.
#[test]
fn serial_pool_matches_parallel_engine_in_simulation() {
    let trace = vec![Request {
        stream: 0,
        arrival: 0,
        bytes: 4096 * 16,
    }];
    let serial = EngineSim::new(EngineClass::Serial.engine(), 30).run(&trace);
    let parallel = EngineSim::new(EngineClass::Parallel.engine(), 1).run(&trace);
    let ratio = serial.finish_cycle as f64 / parallel.finish_cycle as f64;
    assert!((0.9..1.15).contains(&ratio), "ratio = {ratio}");
}
