//! Model validation: for schedules the mapper actually emits on real
//! workloads, the program-order tile trace must reproduce the
//! analytical access counts exactly, and the double-buffered replay
//! must bracket the analytical latency.

use secureloop_arch::Architecture;
use secureloop_crypto::{CryptoConfig, EngineClass};
use secureloop_loopnest::evaluate;
use secureloop_mapper::{search, SearchConfig, SearchMode};
use secureloop_sim::{generate_trace, replay, TraceError};
use secureloop_workload::zoo;

#[test]
fn traces_match_analytical_counts_on_real_schedules() {
    let arch =
        Architecture::eyeriss_base().with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
    let cfg = SearchConfig {
        samples: 300,
        top_k: 3,
        seed: 13,
        threads: 1,
        deadline: None,
        mode: SearchMode::Random,
    };
    let mut validated = 0;
    for net in [zoo::alexnet_conv(), zoo::mobilenet_v2()] {
        for layer in net.layers().iter().step_by(7) {
            let result = search(layer, &arch, &cfg).expect("search succeeds");
            for (mapping, eval) in &result.candidates {
                match generate_trace(layer, &arch, mapping) {
                    Ok(trace) => {
                        let (reads, writes) = trace.totals();
                        assert_eq!(
                            reads,
                            eval.counts.dram_read_words,
                            "{}: read trace diverges",
                            layer.name()
                        );
                        assert_eq!(
                            writes,
                            eval.counts.dram_write_words,
                            "{}: write trace diverges",
                            layer.name()
                        );
                        let r = replay(&trace, &arch);
                        assert!(r.total_cycles >= r.analytical_bound());
                        validated += 1;
                    }
                    Err(TraceError::TooLarge { .. }) => {} // fine: cap hit
                    Err(e) => panic!("{}: {e}", layer.name()),
                }
            }
        }
    }
    assert!(validated >= 10, "only {validated} schedules validated");
}

#[test]
fn pipelining_assumption_is_reasonable_for_best_schedules() {
    // The paper's latency model assumes perfect pipelining. For the
    // *best* schedule of a representative layer the replayed efficiency
    // should be high.
    let arch =
        Architecture::eyeriss_base().with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
    let net = zoo::alexnet_conv();
    let layer = &net.layers()[3];
    let best = search(
        layer,
        &arch,
        &SearchConfig {
            samples: 1500,
            top_k: 1,
            seed: 4,
            threads: 2,
            deadline: None,
            mode: SearchMode::Random,
        },
    )
    .expect("search succeeds")
    .best()
    .expect("found")
    .clone();
    let eval = evaluate(layer, &arch, &best.0).unwrap();
    let trace = generate_trace(layer, &arch, &best.0).expect("traceable");
    let r = replay(&trace, &arch);
    let eff = r.pipeline_efficiency();
    assert!(
        eff > 0.5,
        "best schedule replays at only {eff:.2} of the analytical bound"
    );
    // Analytical dram_cycles and replayed transfer agree to within the
    // per-tile quantisation the analytical model ignores: the replay
    // ceils every tile transfer to whole cycles, so schedules with many
    // small tiles legitimately replay up to ~2x the smooth bound.
    let rel = r.transfer_cycles as f64 / eval.dram_cycles.max(1) as f64;
    assert!((0.8..2.0).contains(&rel), "transfer ratio {rel}");
}
