//! Differential proof harness for the pluggable protection-scheme
//! backends: the default AES-GCM scheme must be *bit-identical* to the
//! pre-scheme pricing path, so every committed golden stays valid with
//! zero re-blessing.
//!
//! Three layers of evidence:
//!
//! 1. `CryptoConfig` pricing delegates through the [`ProtectionScheme`]
//!    trait, and the AES-GCM backend reproduces the raw Table-2 stage
//!    arithmetic to the last mantissa bit.
//! 2. A full scheduler run under an *explicitly selected* `aes-gcm`
//!    scheme (the `--scheme aes-gcm` path) is bit-for-bit identical to
//!    the default-constructed config, totals and per-layer.
//! 3. The committed golden snapshot (`tests/goldens/
//!    alexnet_crypt_opt_cross.json`) is reproduced **byte-identically**
//!    by today's pipeline — not merely within tolerance — which is the
//!    strongest possible statement that the scheme refactor changed no
//!    number anywhere.

use std::path::PathBuf;

use secureloop::dse::apply_scheme;
use secureloop::{Algorithm, AnnealingConfig, NetworkSchedule, Scheduler};
use secureloop_arch::Architecture;
use secureloop_crypto::{CryptoConfig, EngineClass, SchemeId};
use secureloop_json::Json;
use secureloop_mapper::{SearchConfig, SearchMode};
use secureloop_workload::zoo;

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

/// The committed golden's exact budget (keep in sync with
/// `tests/golden_alexnet.rs`).
fn golden_schedule(arch: Architecture) -> NetworkSchedule {
    Scheduler::new(arch)
        .with_search(SearchConfig {
            samples: 800,
            top_k: 4,
            seed: 0xf16,
            threads: 4,
            deadline: None,
            mode: SearchMode::Random,
        })
        .with_annealing(AnnealingConfig::quick())
        .schedule(&zoo::alexnet_conv(), Algorithm::CryptOptCross)
        .expect("AlexNet schedules")
}

fn assert_bit_identical(a: &NetworkSchedule, b: &NetworkSchedule, what: &str) {
    assert_eq!(
        a.total_latency_cycles, b.total_latency_cycles,
        "{what}: total latency diverged"
    );
    assert_eq!(
        a.total_energy_pj.to_bits(),
        b.total_energy_pj.to_bits(),
        "{what}: total energy diverged at the bit level"
    );
    assert_eq!(
        a.overhead.total_bits(),
        b.overhead.total_bits(),
        "{what}: auth overhead diverged"
    );
    assert_eq!(a.layers.len(), b.layers.len(), "{what}: layer count");
    for (la, lb) in a.layers.iter().zip(&b.layers) {
        assert_eq!(la.name, lb.name, "{what}: layer order");
        assert_eq!(
            la.latency_cycles, lb.latency_cycles,
            "{what}: {} latency",
            la.name
        );
        assert_eq!(
            la.energy_pj.to_bits(),
            lb.energy_pj.to_bits(),
            "{what}: {} energy",
            la.name
        );
        assert_eq!(
            la.extra_bits, lb.extra_bits,
            "{what}: {} auth bits",
            la.name
        );
    }
}

/// Layer 1: `CryptoConfig` pricing is the AES-GCM trait object's
/// pricing, bit for bit, for every engine class and count.
#[test]
fn config_pricing_delegates_to_the_aes_gcm_backend() {
    let model = SchemeId::AesGcm.model();
    for class in [
        EngineClass::Pipelined,
        EngineClass::Parallel,
        EngineClass::Serial,
    ] {
        for count in [1usize, 3, 8] {
            let cfg = CryptoConfig::new(class, count);
            assert_eq!(cfg.scheme, SchemeId::AesGcm, "default scheme");
            // Per-stream throughput only exists for the paper's
            // one-engine-per-datatype base design (`count == 3`).
            if count == 3 {
                assert_eq!(
                    cfg.per_stream_bytes_per_cycle()
                        .expect("count == 3 partitions per stream")
                        .to_bits(),
                    model.bytes_per_cycle(class).to_bits(),
                    "{class:?} per-stream throughput"
                );
            }
            assert_eq!(
                cfg.total_bytes_per_cycle().to_bits(),
                (model.bytes_per_cycle(class) * count as f64).to_bits(),
                "{class:?} x{count} total throughput"
            );
            assert_eq!(
                cfg.energy_per_bit_pj().to_bits(),
                model.energy_per_bit_pj(class).to_bits(),
                "{class:?} energy per bit"
            );
            assert_eq!(
                cfg.total_area_kgates().to_bits(),
                (model.area_kgates(class) * count as f64).to_bits(),
                "{class:?} x{count} area"
            );
        }
    }
}

/// Layer 2: selecting `aes-gcm` explicitly (the `--scheme aes-gcm`
/// path, via both `with_scheme` and `apply_scheme`) yields a schedule
/// bit-identical to the default-constructed config.
#[test]
fn explicit_aes_gcm_is_bit_identical_to_the_default() {
    let base =
        Architecture::eyeriss_base().with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
    let explicit = Architecture::eyeriss_base()
        .with_crypto(CryptoConfig::new(EngineClass::Parallel, 3).with_scheme(SchemeId::AesGcm));
    let applied = apply_scheme(&base, SchemeId::AesGcm).expect("aes-gcm applies");

    let quick = |arch: Architecture| {
        Scheduler::new(arch)
            .with_search(SearchConfig {
                samples: 200,
                top_k: 4,
                seed: 0xf16,
                threads: 4,
                deadline: None,
                mode: SearchMode::Random,
            })
            .with_annealing(AnnealingConfig::quick())
            .schedule(&zoo::alexnet_conv(), Algorithm::CryptOptCross)
            .expect("AlexNet schedules")
    };
    let a = quick(base);
    let b = quick(explicit);
    let c = quick(applied);
    assert_bit_identical(&a, &b, "with_scheme(AesGcm) vs default");
    assert_bit_identical(&a, &c, "apply_scheme(AesGcm) vs default");
}

/// Layer 3: the committed golden file is reproduced byte-identically by
/// the post-refactor pipeline — zero re-blessing, zero drift, down to
/// the JSON serialisation of every f64.
#[test]
fn committed_alexnet_golden_is_reproduced_byte_identically() {
    let path = goldens_dir().join("alexnet_crypt_opt_cross.json");
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden {}: {e}", path.display()));

    let s = golden_schedule(
        Architecture::eyeriss_base().with_crypto(CryptoConfig::new(EngineClass::Parallel, 3)),
    );
    let snapshot = Json::obj()
        .field("network", s.network.as_str())
        .field("algorithm", s.algorithm.name())
        .field("total_latency_cycles", s.total_latency_cycles)
        .field("total_energy_pj", s.total_energy_pj)
        .field("overhead_bits", s.overhead.total_bits())
        .field(
            "layers",
            Json::Arr(
                s.layers
                    .iter()
                    .map(|l| {
                        Json::obj()
                            .field("name", l.name.as_str())
                            .field("latency_cycles", l.latency_cycles)
                            .field("energy_pj", l.energy_pj)
                            .field("extra_bits", l.extra_bits)
                    })
                    .collect(),
            ),
        )
        .pretty();

    assert_eq!(
        snapshot, committed,
        "regenerated snapshot differs from the committed golden — the \
         scheme refactor must not change any number"
    );
}
