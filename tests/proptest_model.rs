//! Property tests over the analytical cost model: invariants that must
//! hold for *every* valid mapping of random layers.

use proptest::prelude::*;

use secureloop_arch::Architecture;
use secureloop_crypto::{CryptoConfig, EngineClass};
use secureloop_loopnest::{evaluate, Mapping};
use secureloop_mapper::MappingSampler;
use secureloop_workload::{ConvLayer, Datatype};

fn random_layer() -> impl Strategy<Value = ConvLayer> {
    (
        4u64..40, // input hw
        1u64..24, // cin
        1u64..24, // cout
        prop_oneof![Just(1u64), Just(3), Just(5)],
        1u64..3, // stride
        0u64..2, // pad
    )
        .prop_filter_map("geometry must be valid", |(hw, cin, cout, k, s, p)| {
            ConvLayer::builder("prop")
                .input_hw(hw, hw)
                .channels(cin, cout)
                .kernel(k, k)
                .stride(s)
                .pad(p.min(k / 2))
                .build()
                .ok()
        })
}

/// Draw up to 40 samples and return the valid ones with evaluations.
fn valid_mappings(
    layer: &ConvLayer,
    arch: &Architecture,
    seed: u64,
) -> Vec<(Mapping, secureloop_loopnest::Evaluation)> {
    let mut sampler = MappingSampler::new(layer, arch, seed);
    (0..40)
        .filter_map(|_| {
            let m = sampler.sample();
            evaluate(layer, arch, &m).ok().map(|e| (m, e))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn macs_are_conserved((layer, seed) in (random_layer(), any::<u64>())) {
        let arch = Architecture::eyeriss_base();
        for (m, e) in valid_mappings(&layer, &arch, seed) {
            prop_assert_eq!(e.counts.macs, layer.macs());
            prop_assert_eq!(e.compute_cycles * m.pes_used(), layer.macs());
        }
    }

    #[test]
    fn dram_traffic_covers_compulsory((layer, seed) in (random_layer(), any::<u64>())) {
        let arch = Architecture::eyeriss_base();
        for (_, e) in valid_mappings(&layer, &arch, seed) {
            // Reads must cover each input tensor at least once; the
            // ofmap must be written at least once.
            prop_assert!(
                e.counts.dram_read_words[0] >= layer.tensor_elems(Datatype::Weight)
            );
            // When the stride exceeds the kernel, some input pixels are
            // never touched: the compulsory bound is the *covered*
            // window area, not the full derived extent.
            let p = layer.bounds()[secureloop_workload::Dim::P];
            let q = layer.bounds()[secureloop_workload::Dim::Q];
            let r = layer.bounds()[secureloop_workload::Dim::R];
            let s = layer.bounds()[secureloop_workload::Dim::S];
            let covered = layer.bounds()[secureloop_workload::Dim::N]
                * layer.ifmap_channels()
                * layer.ifmap_height().min(p * r)
                * layer.ifmap_width().min(q * s);
            prop_assert!(e.counts.dram_read_words[1] >= covered);
            prop_assert!(
                e.counts.dram_write_words[2] >= layer.tensor_elems(Datatype::Ofmap)
            );
        }
    }

    #[test]
    fn latency_is_max_of_bottlenecks((layer, seed) in (random_layer(), any::<u64>())) {
        let arch = Architecture::eyeriss_base();
        for (_, e) in valid_mappings(&layer, &arch, seed) {
            prop_assert_eq!(
                e.latency_cycles,
                e.compute_cycles
                    .max(e.dram_cycles)
                    .max(e.glb_cycles)
                    .max(e.noc_cycles)
            );
            prop_assert!(e.energy_pj > 0.0);
            prop_assert!(e.utilization > 0.0 && e.utilization <= 1.0);
        }
    }

    #[test]
    fn crypto_never_speeds_things_up((layer, seed) in (random_layer(), any::<u64>())) {
        let base = Architecture::eyeriss_base();
        let secure = base.clone().with_crypto(CryptoConfig::new(EngineClass::Serial, 3));
        for (m, e) in valid_mappings(&layer, &base, seed) {
            // Same mapping evaluated on the secure architecture cannot
            // be faster or cheaper.
            let es = evaluate(&layer, &secure, &m).unwrap();
            prop_assert!(es.latency_cycles >= e.latency_cycles);
            prop_assert!(es.energy_pj >= e.energy_pj);
            // Traffic itself is unchanged: crypto moves no extra data
            // until AuthBlocks are assigned.
            prop_assert_eq!(es.dram_total_bits, e.dram_total_bits);
        }
    }

    #[test]
    fn extra_bits_monotone((layer, seed) in (random_layer(), any::<u64>())) {
        let arch = Architecture::eyeriss_base()
            .with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
        for (_, e) in valid_mappings(&layer, &arch, seed) {
            let e1 = e.with_extra_dram_bits(&arch, [1000, 0, 0]);
            let e2 = e.with_extra_dram_bits(&arch, [1000, 50_000, 0]);
            prop_assert!(e1.latency_cycles >= e.latency_cycles);
            prop_assert!(e2.latency_cycles >= e1.latency_cycles);
            prop_assert!(e2.energy_pj > e1.energy_pj);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compact_mapping_text_roundtrips((layer, seed) in (random_layer(), any::<u64>())) {
        use secureloop_loopnest::CompactMapping;
        let arch = Architecture::eyeriss_base();
        let mut sampler = MappingSampler::new(&layer, &arch, seed);
        for _ in 0..10 {
            let m = sampler.sample();
            let text = CompactMapping(&m).to_string();
            let parsed: Mapping = text.parse().expect("print always parses");
            prop_assert_eq!(parsed, m, "roundtrip failed for '{}'", text);
        }
    }
}

/// Regressions proptest shrank in the past, promoted to named
/// deterministic tests (the `.proptest-regressions` side file is gone):
/// a degenerate 1×1-kernel layer whose stride (2) *exceeds* the kernel,
/// so some input pixels are never read and the compulsory-traffic bound
/// must use the covered window area, not the full derived extent.
mod regressions {
    use super::*;

    /// The shrunk counterexample: bounds [N,M,C,P,Q,R,S] =
    /// [1,1,1,2,2,1,1], stride 2, pad 0, 8-bit words.
    const SHRUNK_SEED: u64 = 211_403_808_112_686_754;

    fn covered_window_layer() -> ConvLayer {
        let layer = ConvLayer::builder("prop")
            .input_hw(3, 3)
            .channels(1, 1)
            .kernel(1, 1)
            .stride(2)
            .pad(0)
            .build()
            .expect("valid geometry");
        use secureloop_workload::Dim::*;
        let b = layer.bounds();
        assert_eq!(
            [b[N], b[M], b[C], b[P], b[Q], b[R], b[S]],
            [1, 1, 1, 2, 2, 1, 1],
            "regression layer must reproduce the shrunk bounds"
        );
        layer
    }

    #[test]
    fn covered_window_macs_are_conserved() {
        let layer = covered_window_layer();
        let arch = Architecture::eyeriss_base();
        let mappings = valid_mappings(&layer, &arch, SHRUNK_SEED);
        assert!(!mappings.is_empty(), "seed must yield valid mappings");
        for (m, e) in mappings {
            assert_eq!(e.counts.macs, layer.macs());
            assert_eq!(e.compute_cycles * m.pes_used(), layer.macs());
        }
    }

    #[test]
    fn covered_window_dram_traffic_covers_compulsory() {
        // The original failure: with stride 2 > kernel 1 only a 2×2
        // subgrid of the 3×3 input is ever touched, so the compulsory
        // ifmap bound is 4 words, not 9.
        let layer = covered_window_layer();
        use secureloop_workload::Dim::*;
        let b = layer.bounds();
        let covered = b[N]
            * layer.ifmap_channels()
            * layer.ifmap_height().min(b[P] * b[R])
            * layer.ifmap_width().min(b[Q] * b[S]);
        assert!(covered < layer.tensor_elems(Datatype::Ifmap));
        let arch = Architecture::eyeriss_base();
        for (_, e) in valid_mappings(&layer, &arch, SHRUNK_SEED) {
            assert!(e.counts.dram_read_words[0] >= layer.tensor_elems(Datatype::Weight));
            assert!(e.counts.dram_read_words[1] >= covered);
            assert!(e.counts.dram_write_words[2] >= layer.tensor_elems(Datatype::Ofmap));
        }
    }

    #[test]
    fn covered_window_latency_is_max_of_bottlenecks() {
        let layer = covered_window_layer();
        let arch = Architecture::eyeriss_base();
        for (_, e) in valid_mappings(&layer, &arch, SHRUNK_SEED) {
            assert_eq!(
                e.latency_cycles,
                e.compute_cycles
                    .max(e.dram_cycles)
                    .max(e.glb_cycles)
                    .max(e.noc_cycles)
            );
            assert!(e.energy_pj > 0.0);
            assert!(e.utilization > 0.0 && e.utilization <= 1.0);
        }
    }

    #[test]
    fn covered_window_crypto_never_speeds_things_up() {
        let layer = covered_window_layer();
        let base = Architecture::eyeriss_base();
        let secure = base
            .clone()
            .with_crypto(CryptoConfig::new(EngineClass::Serial, 3));
        for (m, e) in valid_mappings(&layer, &base, SHRUNK_SEED) {
            let es = evaluate(&layer, &secure, &m).unwrap();
            assert!(es.latency_cycles >= e.latency_cycles);
            assert!(es.energy_pj >= e.energy_pj);
            assert_eq!(es.dram_total_bits, e.dram_total_bits);
        }
    }

    #[test]
    fn covered_window_extra_bits_monotone() {
        let layer = covered_window_layer();
        let arch =
            Architecture::eyeriss_base().with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
        for (_, e) in valid_mappings(&layer, &arch, SHRUNK_SEED) {
            let e1 = e.with_extra_dram_bits(&arch, [1000, 0, 0]);
            let e2 = e.with_extra_dram_bits(&arch, [1000, 50_000, 0]);
            assert!(e1.latency_cycles >= e.latency_cycles);
            assert!(e2.latency_cycles >= e1.latency_cycles);
            assert!(e2.energy_pj > e1.energy_pj);
        }
    }

    #[test]
    fn covered_window_compact_mapping_roundtrips() {
        use secureloop_loopnest::CompactMapping;
        let layer = covered_window_layer();
        let arch = Architecture::eyeriss_base();
        let mut sampler = MappingSampler::new(&layer, &arch, SHRUNK_SEED);
        for _ in 0..10 {
            let m = sampler.sample();
            let text = CompactMapping(&m).to_string();
            let parsed: Mapping = text.parse().expect("print always parses");
            assert_eq!(parsed, m, "roundtrip failed for '{text}'");
        }
    }
}
