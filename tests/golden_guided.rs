//! Golden snapshots of the full scheduler under **guided** search
//! (`SearchMode::Guided`), on AlexNet conv1–conv5 and the attention
//! block — the guided twins of `tests/golden_alexnet.rs` and
//! `tests/golden_modern.rs`, pinned against
//! `tests/goldens/{alexnet,attention}_guided.json`.
//!
//! Beyond drift detection, these tests pin the quality claim that
//! justifies making guided the CLI default: at the same sample *cap*
//! the guided schedule must be no worse than the committed random-mode
//! golden on total latency and energy (small tolerance for model
//! refinements), even though guided typically stops well short of the
//! cap.
//!
//! To re-bless after an intentional model or search change:
//!
//! ```sh
//! SECURELOOP_BLESS=1 cargo test --test golden_guided
//! git diff tests/goldens/   # review before committing
//! ```

use std::path::PathBuf;

use secureloop::{Algorithm, AnnealingConfig, NetworkSchedule, Scheduler};
use secureloop_arch::Architecture;
use secureloop_crypto::{CryptoConfig, EngineClass};
use secureloop_json::Json;
use secureloop_mapper::{SearchConfig, SearchMode};
use secureloop_workload::{zoo, Network};

const LATENCY_TOL: f64 = 0.10;
const ENERGY_TOL: f64 = 0.10;
const BITS_TOL: f64 = 0.15;
/// Guided totals may exceed the committed random goldens by at most
/// this factor (they are usually *better*; the slack absorbs model
/// refinements between blessings of the two files).
const VS_RANDOM_TOL: f64 = 0.10;

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

/// The random goldens' architecture and algorithm, with guided mode
/// switched on. In guided mode `samples` is a *cap*, not a budget:
/// searches stop when the front stops improving, typically well under
/// the random goldens' 800-draw spend (see `BENCH_guided.json`), so the
/// cap is set high enough that convergence — not truncation — decides
/// where each search ends.
fn schedule(net: &Network) -> NetworkSchedule {
    let arch =
        Architecture::eyeriss_base().with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
    Scheduler::new(arch)
        .with_search(SearchConfig {
            samples: 4096,
            top_k: 4,
            seed: 0xf16,
            threads: 4,
            deadline: None,
            mode: SearchMode::Guided,
        })
        .with_annealing(AnnealingConfig::quick())
        .schedule(net, Algorithm::CryptOptCross)
        .expect("network schedules")
}

fn snapshot_json(s: &NetworkSchedule) -> Json {
    Json::obj()
        .field("network", s.network.as_str())
        .field("algorithm", s.algorithm.name())
        .field("search_mode", "guided")
        .field("total_latency_cycles", s.total_latency_cycles)
        .field("total_energy_pj", s.total_energy_pj)
        .field("overhead_bits", s.overhead.total_bits())
        .field(
            "layers",
            Json::Arr(
                s.layers
                    .iter()
                    .map(|l| {
                        Json::obj()
                            .field("name", l.name.as_str())
                            .field("latency_cycles", l.latency_cycles)
                            .field("energy_pj", l.energy_pj)
                            .field("extra_bits", l.extra_bits)
                    })
                    .collect(),
            ),
        )
}

fn within(actual: f64, expected: f64, tol: f64) -> bool {
    if expected == 0.0 {
        return actual == 0.0;
    }
    (actual - expected).abs() / expected <= tol
}

fn check_against_golden(net: &Network, file: &str) {
    let s = schedule(net);
    let path = goldens_dir().join(file);

    if std::env::var_os("SECURELOOP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("goldens dir");
        std::fs::write(&path, snapshot_json(&s).pretty()).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {} ({e}); run with SECURELOOP_BLESS=1 to create it",
            path.display()
        )
    });
    let g = Json::parse(&text).expect("golden parses");

    assert_eq!(g["network"].as_str(), Some(s.network.as_str()));
    assert_eq!(g["algorithm"].as_str(), Some(s.algorithm.name()));
    assert_eq!(g["search_mode"].as_str(), Some("guided"));

    let mut failures: Vec<String> = Vec::new();
    let mut check = |what: String, actual: f64, expected: f64, tol: f64| {
        if !within(actual, expected, tol) {
            failures.push(format!(
                "{what}: {actual:.0} vs golden {expected:.0} (tol {:.0}%)",
                tol * 100.0
            ));
        }
    };

    check(
        "total latency".into(),
        s.total_latency_cycles as f64,
        g["total_latency_cycles"].as_u64().expect("golden field") as f64,
        LATENCY_TOL,
    );
    check(
        "total energy".into(),
        s.total_energy_pj,
        g["total_energy_pj"].as_f64().expect("golden field"),
        ENERGY_TOL,
    );
    check(
        "overhead bits".into(),
        s.overhead.total_bits() as f64,
        g["overhead_bits"].as_u64().expect("golden field") as f64,
        BITS_TOL,
    );

    let layers = g["layers"].as_array().expect("golden layers");
    assert_eq!(layers.len(), s.layers.len(), "layer count changed");
    for (gl, l) in layers.iter().zip(&s.layers) {
        let name = gl["name"].as_str().expect("layer name");
        assert_eq!(name, l.name, "layer order changed");
        check(
            format!("{name} latency"),
            l.latency_cycles as f64,
            gl["latency_cycles"].as_u64().expect("golden field") as f64,
            LATENCY_TOL,
        );
        check(
            format!("{name} energy"),
            l.energy_pj,
            gl["energy_pj"].as_f64().expect("golden field"),
            ENERGY_TOL,
        );
        check(
            format!("{name} auth bits"),
            l.extra_bits as f64,
            gl["extra_bits"].as_u64().expect("golden field") as f64,
            BITS_TOL,
        );
    }

    assert!(
        failures.is_empty(),
        "guided schedule drifted from golden (re-bless with SECURELOOP_BLESS=1 \
         if the change is intentional):\n  {}",
        failures.join("\n  ")
    );
}

/// Guided totals must be no worse than the committed *random* golden
/// (within `VS_RANDOM_TOL`): the guided default may not regress the
/// schedules users were getting before.
fn check_no_worse_than_random(net: &Network, random_golden: &str) {
    let path = goldens_dir().join(random_golden);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read random golden {} ({e})", path.display()));
    let g = Json::parse(&text).expect("random golden parses");
    let s = schedule(net);
    let rand_latency = g["total_latency_cycles"].as_u64().expect("golden field") as f64;
    let rand_energy = g["total_energy_pj"].as_f64().expect("golden field");
    assert!(
        (s.total_latency_cycles as f64) <= rand_latency * (1.0 + VS_RANDOM_TOL),
        "guided latency {} regresses the random golden {} by more than {:.0}%",
        s.total_latency_cycles,
        rand_latency,
        VS_RANDOM_TOL * 100.0
    );
    assert!(
        s.total_energy_pj <= rand_energy * (1.0 + VS_RANDOM_TOL),
        "guided energy {} regresses the random golden {} by more than {:.0}%",
        s.total_energy_pj,
        rand_energy,
        VS_RANDOM_TOL * 100.0
    );
}

#[test]
fn alexnet_guided_matches_golden() {
    check_against_golden(&zoo::alexnet_conv(), "alexnet_guided.json");
}

#[test]
fn attention_guided_matches_golden() {
    check_against_golden(&zoo::attention(128, 512), "attention_guided.json");
}

#[test]
fn alexnet_guided_no_worse_than_random_golden() {
    check_no_worse_than_random(&zoo::alexnet_conv(), "alexnet_crypt_opt_cross.json");
}

#[test]
fn attention_guided_no_worse_than_random_golden() {
    check_no_worse_than_random(&zoo::attention(128, 512), "attention_crypt_opt_cross.json");
}

/// The guided snapshot runs are reproducible: scheduling twice with
/// the same seeded config gives identical totals (guided determinism,
/// end to end through the scheduler).
#[test]
fn guided_golden_config_is_deterministic() {
    let net = zoo::alexnet_conv();
    let a = schedule(&net);
    let b = schedule(&net);
    assert_eq!(a.total_latency_cycles, b.total_latency_cycles);
    assert_eq!(a.total_energy_pj.to_bits(), b.total_energy_pj.to_bits());
    assert_eq!(a.overhead.total_bits(), b.overhead.total_bits());
}
