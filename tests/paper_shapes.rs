//! Golden qualitative-shape tests: the paper's headline evaluation
//! claims, asserted end-to-end with modest search budgets. These are
//! the regressions that matter most — if one fails, the reproduction
//! no longer tells the paper's story.

use secureloop::dse::{evaluate_designs, fig16_design_space, pareto_front};
use secureloop::{Algorithm, AnnealingConfig, Scheduler};
use secureloop_arch::{Architecture, DramSpec};
use secureloop_crypto::{CryptoConfig, EngineClass};
use secureloop_mapper::{SearchConfig, SearchMode};
use secureloop_workload::zoo;

fn search() -> SearchConfig {
    SearchConfig {
        samples: 800,
        top_k: 4,
        seed: 0xf16,
        threads: 4,
        deadline: None,
        mode: SearchMode::Random,
    }
}

fn sched(arch: Architecture) -> Scheduler {
    Scheduler::new(arch)
        .with_search(search())
        .with_annealing(AnnealingConfig::quick())
}

/// Fig. 13: Serial ×30 performs like Parallel ×1 at ~10× the crypto
/// area; pipelined engines approach the unsecure baseline.
#[test]
fn fig13_shape_engine_configurations() {
    let net = zoo::mobilenet_v2();
    let unsec = sched(Architecture::eyeriss_base())
        .schedule(&net, Algorithm::Unsecure)
        .expect("schedule");
    let run = |cfg: CryptoConfig| {
        sched(Architecture::eyeriss_base().with_crypto(cfg))
            .schedule(&net, Algorithm::CryptOptCross)
            .expect("schedule")
            .total_latency_cycles as f64
            / unsec.total_latency_cycles as f64
    };
    let par1 = run(CryptoConfig::new(EngineClass::Parallel, 1));
    let ser30 = run(CryptoConfig::new(EngineClass::Serial, 30));
    let pipe1 = run(CryptoConfig::new(EngineClass::Pipelined, 1));
    assert!(
        (ser30 / par1 - 1.0).abs() < 0.25,
        "Serial x30 ({ser30:.2}) must track Parallel x1 ({par1:.2})"
    );
    assert!(
        pipe1 < 1.3,
        "Pipelined x1 slowdown {pipe1:.2} must be small"
    );
    assert!(par1 > 2.0, "Parallel x1 must throttle MobileNetV2");
    let area = |cfg: CryptoConfig| cfg.total_area_kgates();
    let ratio = area(CryptoConfig::new(EngineClass::Serial, 30))
        / area(CryptoConfig::new(EngineClass::Parallel, 1));
    assert!((9.0..11.0).contains(&ratio), "area ratio {ratio:.1} ~ 10x");
}

/// Fig. 14: more PEs help the unsecure design almost linearly but
/// barely move the parallel-engine design.
#[test]
fn fig14_shape_pe_scaling() {
    let net = zoo::mobilenet_v2();
    let lat = |x: usize, y: usize, secure: bool| {
        let mut arch = Architecture::eyeriss_base().with_pe_array(x, y);
        let algo = if secure {
            arch = arch.with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
            Algorithm::CryptOptCross
        } else {
            Algorithm::Unsecure
        };
        sched(arch)
            .schedule(&net, algo)
            .expect("schedule")
            .total_latency_cycles as f64
    };
    let unsec_gain = lat(14, 12, false) / lat(28, 24, false);
    let sec_gain = lat(14, 12, true) / lat(28, 24, true);
    assert!(
        unsec_gain > 2.0,
        "unsecure 4x PEs must give >2x ({unsec_gain:.2})"
    );
    assert!(
        sec_gain < 1.3,
        "secure design is supply-bound ({sec_gain:.2})"
    );
}

/// Fig. 15: shrinking the GLB hurts the throttled secure design but
/// not the unsecure baseline.
#[test]
fn fig15_shape_glb_scaling() {
    let net = zoo::alexnet_conv();
    let lat = |kb: u64, secure: bool| {
        let mut arch = Architecture::eyeriss_base().with_glb_kb(kb);
        let algo = if secure {
            arch = arch.with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
            Algorithm::CryptOptCross
        } else {
            Algorithm::Unsecure
        };
        sched(arch)
            .schedule(&net, algo)
            .expect("schedule")
            .total_latency_cycles as f64
    };
    let unsec_ratio = lat(16, false) / lat(131, false);
    let sec_ratio = lat(16, true) / lat(131, true);
    assert!(
        unsec_ratio < 1.15,
        "unsecure barely moves ({unsec_ratio:.2})"
    );
    assert!(
        sec_ratio > unsec_ratio,
        "secure must suffer more from small buffers ({sec_ratio:.2} vs {unsec_ratio:.2})"
    );
}

/// §5.2 DRAM study: bandwidth does not change secure latency; HBM2
/// cuts energy at unchanged latency.
#[test]
fn dram_shape_technology_study() {
    let net = zoo::alexnet_conv();
    let run = |dram: DramSpec| {
        sched(
            Architecture::eyeriss_base()
                .with_dram(dram)
                .with_crypto(CryptoConfig::new(EngineClass::Parallel, 3)),
        )
        .schedule(&net, Algorithm::CryptOptCross)
        .expect("schedule")
    };
    let lp64 = run(DramSpec::lpddr4_64());
    let lp128 = run(DramSpec::lpddr4_128());
    let hbm = run(DramSpec::hbm2_64());
    assert_eq!(lp64.total_latency_cycles, lp128.total_latency_cycles);
    assert_eq!(lp64.total_latency_cycles, hbm.total_latency_cycles);
    assert!(hbm.total_energy_pj < 0.8 * lp64.total_energy_pj);
    assert!((lp64.total_energy_pj - lp128.total_energy_pj).abs() < 1.0);
}

/// Fig. 16: the Pareto front exists and the large-array +
/// low-throughput-engine corner is dominated.
#[test]
fn fig16_shape_pareto_front() {
    let net = zoo::alexnet_conv();
    let designs = fig16_design_space();
    let results = evaluate_designs(
        &net,
        &designs,
        Algorithm::CryptOptSingle,
        &search(),
        &AnnealingConfig::quick(),
    );
    let front = pareto_front(&results);
    assert!(front.len() >= 4, "front has {} members", front.len());
    // The biggest array with the slowest engine and smallest buffer
    // must not be the fastest design (paper: parallelism wasted when
    // the engine bottlenecks).
    let corner = results
        .iter()
        .position(|r| r.label == "28x24/16kB/Parallel")
        .expect("design exists");
    let fastest = results.iter().map(|r| r.latency()).min().expect("nonempty");
    assert!(results[corner].latency() > fastest);
}
