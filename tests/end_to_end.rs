//! End-to-end integration: the full three-step scheduler against the
//! whole crate stack, with small search budgets.

use secureloop::report;
use secureloop::{Algorithm, AnnealingConfig, Scheduler};
use secureloop_arch::Architecture;
use secureloop_crypto::{CryptoConfig, EngineClass};
use secureloop_mapper::{SearchConfig, SearchMode};
use secureloop_workload::zoo;

fn quick_scheduler(arch: Architecture) -> Scheduler {
    Scheduler::new(arch)
        .with_search(SearchConfig {
            samples: 600,
            top_k: 4,
            seed: 77,
            threads: 2,
            deadline: None,
            mode: SearchMode::Random,
        })
        .with_annealing(AnnealingConfig::quick())
}

#[test]
fn full_pipeline_on_alexnet() {
    let secure =
        Architecture::eyeriss_base().with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
    let s = quick_scheduler(secure);

    let unsecure = s
        .schedule(&zoo::alexnet_conv(), Algorithm::Unsecure)
        .expect("schedule");
    let tile = s
        .schedule(&zoo::alexnet_conv(), Algorithm::CryptTileSingle)
        .expect("schedule");
    let opt = s
        .schedule(&zoo::alexnet_conv(), Algorithm::CryptOptSingle)
        .expect("schedule");
    let cross = s
        .schedule(&zoo::alexnet_conv(), Algorithm::CryptOptCross)
        .expect("schedule");

    // Table 1 ordering: each scheduler step only helps.
    assert!(unsecure.total_latency_cycles <= tile.total_latency_cycles);
    assert!(opt.total_latency_cycles <= tile.total_latency_cycles);
    assert!(cross.total_latency_cycles <= opt.total_latency_cycles);
    assert!(opt.overhead.total_bits() <= tile.overhead.total_bits());

    // Energy always grows when crypto is attached — asserted on the
    // model's structural guarantees (positive crypto-engine energy and
    // authentication traffic), not by comparing totals of two
    // independently-searched mappings, which the stochastic mapper does
    // not order.
    assert!(opt.energy_breakdown().crypto_pj > 0.0);
    assert!(opt.overhead.total_bits() > 0);
    assert!(opt.total_energy_pj > opt.energy_breakdown().crypto_pj);

    // Report layer accounting is self-consistent.
    for sched in [&unsecure, &tile, &opt, &cross] {
        assert_eq!(sched.layers.len(), 5);
        let total: u64 = sched.layers.iter().map(|l| l.latency_cycles).sum();
        assert_eq!(total, sched.total_latency_cycles);
    }
}

#[test]
fn workload_slowdown_ordering_matches_paper() {
    // Fig. 11a's qualitative shape: MobileNetV2 suffers the most from
    // the crypto engine, AlexNet the least.
    let secure =
        Architecture::eyeriss_base().with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
    let s = quick_scheduler(secure);
    let mut slowdowns = Vec::new();
    for net in [zoo::alexnet_conv(), zoo::resnet18(), zoo::mobilenet_v2()] {
        let unsec = s.schedule(&net, Algorithm::Unsecure).expect("schedule");
        let sec = s
            .schedule(&net, Algorithm::CryptOptCross)
            .expect("schedule");
        slowdowns.push(sec.total_latency_cycles as f64 / unsec.total_latency_cycles as f64);
    }
    let (alexnet, resnet, mobilenet) = (slowdowns[0], slowdowns[1], slowdowns[2]);
    assert!(alexnet >= 1.0 && resnet >= 1.0 && mobilenet >= 1.0);
    assert!(
        mobilenet > resnet && resnet >= alexnet,
        "expected mobilenet > resnet >= alexnet, got {slowdowns:?}"
    );
    assert!(mobilenet > 2.0, "MobileNetV2 must be heavily throttled");
}

#[test]
fn pipelined_engines_nearly_remove_the_overhead() {
    // Fig. 13's headline: high-throughput engines approach the
    // unsecure baseline.
    let net = zoo::mobilenet_v2();
    let base = quick_scheduler(Architecture::eyeriss_base());
    let unsec = base.schedule(&net, Algorithm::Unsecure).expect("schedule");

    let pipe = quick_scheduler(
        Architecture::eyeriss_base().with_crypto(CryptoConfig::new(EngineClass::Pipelined, 3)),
    )
    .schedule(&net, Algorithm::CryptOptCross)
    .expect("schedule");
    let par = quick_scheduler(
        Architecture::eyeriss_base().with_crypto(CryptoConfig::new(EngineClass::Parallel, 3)),
    )
    .schedule(&net, Algorithm::CryptOptCross)
    .expect("schedule");

    let pipe_slow = pipe.total_latency_cycles as f64 / unsec.total_latency_cycles as f64;
    let par_slow = par.total_latency_cycles as f64 / unsec.total_latency_cycles as f64;
    assert!(pipe_slow < par_slow, "pipelined must beat parallel engines");
    assert!(pipe_slow < 1.6, "pipelined slowdown {pipe_slow} too large");
    assert!(par_slow > 2.0, "parallel engines must visibly throttle");
}

#[test]
fn reports_serialize() {
    let secure =
        Architecture::eyeriss_base().with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
    let s = quick_scheduler(secure);
    let sched = s
        .schedule(&zoo::alexnet_conv(), Algorithm::CryptOptSingle)
        .expect("schedule");
    let json = report::to_json(&sched);
    assert!(json.contains("\"network\": \"AlexNet\""));
    let mut csv = Vec::new();
    report::write_summary_csv(&mut csv, std::slice::from_ref(&sched)).unwrap();
    assert!(String::from_utf8(csv).unwrap().contains("Crypt-Opt-Single"));
}

#[test]
fn fc_chain_schedules_cleanly() {
    // The MLP workload exercises the FC path of the tensor bridge:
    // coupled tensors are channel vectors, not feature-map planes.
    let secure =
        Architecture::eyeriss_base().with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
    let s = quick_scheduler(secure);
    let net = zoo::mlp(4, 512);
    let tile = s
        .schedule(&net, Algorithm::CryptTileSingle)
        .expect("schedule");
    let opt = s
        .schedule(&net, Algorithm::CryptOptCross)
        .expect("schedule");
    assert!(opt.total_latency_cycles <= tile.total_latency_cycles);
    assert!(opt.overhead.total_bits() <= tile.overhead.total_bits());
    // FC tensors are tiny vectors: the hash overhead must stay small
    // relative to the weight traffic.
    let data: u64 = opt.layers.iter().map(|l| l.data_dram_bits).sum();
    assert!(opt.overhead.total_bits() < data / 4);
}

#[test]
fn vgg16_deep_segments_schedule() {
    let secure =
        Architecture::eyeriss_base().with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
    let s = quick_scheduler(secure);
    let net = zoo::vgg16();
    let r = s
        .schedule(&net, Algorithm::CryptOptSingle)
        .expect("schedule");
    assert_eq!(r.layers.len(), 16);
    // Rehash remains a legal fallback, but the optimal assignment must
    // beat the prior-work baseline overall.
    let tile = s
        .schedule(&net, Algorithm::CryptTileSingle)
        .expect("schedule");
    assert!(r.overhead.total_bits() <= tile.overhead.total_bits());
}
