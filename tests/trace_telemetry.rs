//! End-to-end telemetry: the CLI with `--trace-out` must emit a
//! parseable JSON-Lines trace covering every pipeline phase, and the
//! `--json` report must carry the telemetry summary that explains the
//! search effort behind the result.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Mutex;

use secureloop::cli;
use secureloop_json::Json;

/// Telemetry counters and the trace sink are process-global, so the
/// tests in this file must not interleave.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_string).collect()
}

fn tmp_trace(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("secureloop-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Parse a JSON-Lines trace and return the set of phases seen,
/// asserting every line is a well-formed event on the way.
fn phases_of(path: &PathBuf) -> BTreeSet<String> {
    let text = std::fs::read_to_string(path).expect("trace file exists");
    let mut phases = BTreeSet::new();
    let mut lines = 0;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        lines += 1;
        let v = Json::parse(line).unwrap_or_else(|e| panic!("bad trace line: {e}\n{line}"));
        let event = v["event"].as_str().expect("event field");
        let phase = v["phase"].as_str().expect("phase field");
        if event == "span" {
            assert!(v["name"].as_str().is_some(), "span without name: {line}");
            assert!(v["us"].as_u64().is_some(), "span without us: {line}");
        }
        phases.insert(phase.to_string());
    }
    assert!(lines > 0, "trace is empty");
    phases
}

#[test]
fn schedule_trace_covers_mapper_authblock_anneal_scheduler() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let trace = tmp_trace("schedule.jsonl");
    let out = cli::run(&argv(&format!(
        "schedule --workload alexnet --samples 300 --iterations 20 --json \
         --trace-out {}",
        trace.display()
    )))
    .expect("schedule succeeds");

    let phases = phases_of(&trace);
    for phase in ["mapper", "authblock", "anneal", "scheduler"] {
        assert!(phases.contains(phase), "missing phase {phase}: {phases:?}");
    }

    // The JSON report carries the telemetry summary.
    let v = Json::parse(&out).expect("report parses");
    let t = &v["telemetry"];
    assert!(t["mapper"]["samples_evaluated"].as_u64().unwrap() > 0);
    assert!(t["mapper"]["searches"].as_u64().unwrap() > 0);
    assert!(t["mapper"]["tiers"].as_object().is_some());
    assert!(t["mapper"]["rejects"].as_object().is_some());
    assert!(t["authblock"]["optimize_runs"].as_u64().unwrap() > 0);
    assert!(t["annealing"]["proposals"].as_u64().unwrap() > 0);
    let rate = t["annealing"]["acceptance_rate"].as_f64().unwrap();
    assert!((0.0..=1.0).contains(&rate), "acceptance rate {rate}");
    assert_eq!(
        t["annealing"]["acceptance_by_quartile"]
            .as_array()
            .unwrap()
            .len(),
        4
    );
    // A plain schedule never touches the DSE sweep.
    assert_eq!(t["dse"]["designs_evaluated"].as_u64(), Some(0));

    let _ = std::fs::remove_file(&trace);
}

#[test]
fn dse_trace_adds_the_dse_phase() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let trace = tmp_trace("dse.jsonl");
    cli::run(&argv(&format!(
        "dse --workload alexnet --samples 60 --iterations 5 --trace-out {}",
        trace.display()
    )))
    .expect("dse succeeds");

    let phases = phases_of(&trace);
    for phase in ["mapper", "authblock", "anneal", "scheduler", "dse"] {
        assert!(phases.contains(phase), "missing phase {phase}: {phases:?}");
    }
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn trace_out_to_unwritable_path_is_a_usage_error() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let e = cli::run(&argv(
        "schedule --workload alexnet --samples 50 \
         --trace-out /nonexistent-dir/trace.jsonl",
    ))
    .expect_err("cannot create the file");
    assert!(e.to_string().contains("trace"), "{e}");
}
