//! Golden snapshot of the full SecureLoop scheduler on AlexNet
//! conv1–conv5 (the paper's Fig. 11 workload), pinned against
//! `tests/goldens/alexnet_crypt_opt_cross.json`.
//!
//! The schedule is produced with the same search budget as the
//! paper-shape suite (`tests/paper_shapes.rs`: 800 samples, top-4,
//! seed 0xf16, 4 threads, quick annealing), so the two suites disagree
//! only if the model itself changes. Numbers are compared with
//! tolerances — 10% on latency/energy, 15% on authentication bits —
//! wide enough to absorb deliberate cost-model refinements, tight
//! enough to catch a broken mapper, AuthBlock solver or annealer.
//!
//! To re-bless after an intentional model change:
//!
//! ```sh
//! SECURELOOP_BLESS=1 cargo test --test golden_alexnet
//! git diff tests/goldens/   # review before committing
//! ```

use std::path::PathBuf;

use secureloop::{Algorithm, AnnealingConfig, NetworkSchedule, Scheduler};
use secureloop_arch::Architecture;
use secureloop_crypto::{CryptoConfig, EngineClass};
use secureloop_json::Json;
use secureloop_mapper::{SearchConfig, SearchMode};
use secureloop_workload::zoo;

const LATENCY_TOL: f64 = 0.10;
const ENERGY_TOL: f64 = 0.10;
const BITS_TOL: f64 = 0.15;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/alexnet_crypt_opt_cross.json")
}

/// The paper-shape search budget (keep in sync with
/// `tests/paper_shapes.rs`).
fn schedule() -> NetworkSchedule {
    let arch =
        Architecture::eyeriss_base().with_crypto(CryptoConfig::new(EngineClass::Parallel, 3));
    Scheduler::new(arch)
        .with_search(SearchConfig {
            samples: 800,
            top_k: 4,
            seed: 0xf16,
            threads: 4,
            deadline: None,
            mode: SearchMode::Random,
        })
        .with_annealing(AnnealingConfig::quick())
        .schedule(&zoo::alexnet_conv(), Algorithm::CryptOptCross)
        .expect("AlexNet schedules")
}

fn snapshot_json(s: &NetworkSchedule) -> Json {
    Json::obj()
        .field("network", s.network.as_str())
        .field("algorithm", s.algorithm.name())
        .field("total_latency_cycles", s.total_latency_cycles)
        .field("total_energy_pj", s.total_energy_pj)
        .field("overhead_bits", s.overhead.total_bits())
        .field(
            "layers",
            Json::Arr(
                s.layers
                    .iter()
                    .map(|l| {
                        Json::obj()
                            .field("name", l.name.as_str())
                            .field("latency_cycles", l.latency_cycles)
                            .field("energy_pj", l.energy_pj)
                            .field("extra_bits", l.extra_bits)
                    })
                    .collect(),
            ),
        )
}

fn within(actual: f64, expected: f64, tol: f64) -> bool {
    if expected == 0.0 {
        return actual == 0.0;
    }
    (actual - expected).abs() / expected <= tol
}

#[test]
fn alexnet_crypt_opt_cross_matches_golden() {
    let s = schedule();
    let path = golden_path();

    if std::env::var_os("SECURELOOP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("goldens dir");
        std::fs::write(&path, snapshot_json(&s).pretty()).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {} ({e}); run with SECURELOOP_BLESS=1 to create it",
            path.display()
        )
    });
    let g = Json::parse(&text).expect("golden parses");

    assert_eq!(g["network"].as_str(), Some(s.network.as_str()));
    assert_eq!(g["algorithm"].as_str(), Some(s.algorithm.name()));

    let mut failures: Vec<String> = Vec::new();
    let mut check = |what: String, actual: f64, expected: f64, tol: f64| {
        if !within(actual, expected, tol) {
            failures.push(format!(
                "{what}: {actual:.0} vs golden {expected:.0} (tol {:.0}%)",
                tol * 100.0
            ));
        }
    };

    check(
        "total latency".into(),
        s.total_latency_cycles as f64,
        g["total_latency_cycles"].as_u64().expect("golden field") as f64,
        LATENCY_TOL,
    );
    check(
        "total energy".into(),
        s.total_energy_pj,
        g["total_energy_pj"].as_f64().expect("golden field"),
        ENERGY_TOL,
    );
    check(
        "overhead bits".into(),
        s.overhead.total_bits() as f64,
        g["overhead_bits"].as_u64().expect("golden field") as f64,
        BITS_TOL,
    );

    let layers = g["layers"].as_array().expect("golden layers");
    assert_eq!(layers.len(), s.layers.len(), "layer count changed");
    for (gl, l) in layers.iter().zip(&s.layers) {
        let name = gl["name"].as_str().expect("layer name");
        assert_eq!(name, l.name, "layer order changed");
        check(
            format!("{name} latency"),
            l.latency_cycles as f64,
            gl["latency_cycles"].as_u64().expect("golden field") as f64,
            LATENCY_TOL,
        );
        check(
            format!("{name} energy"),
            l.energy_pj,
            gl["energy_pj"].as_f64().expect("golden field"),
            ENERGY_TOL,
        );
        check(
            format!("{name} auth bits"),
            l.extra_bits as f64,
            gl["extra_bits"].as_u64().expect("golden field") as f64,
            BITS_TOL,
        );
    }

    assert!(
        failures.is_empty(),
        "schedule drifted from golden (re-bless with SECURELOOP_BLESS=1 \
         if the change is intentional):\n  {}",
        failures.join("\n  ")
    );
}

/// The golden run is reproducible: scheduling twice with the same
/// seeded config gives identical totals (the determinism the snapshot
/// relies on).
#[test]
fn golden_config_is_deterministic() {
    let a = schedule();
    let b = schedule();
    assert_eq!(a.total_latency_cycles, b.total_latency_cycles);
    assert_eq!(a.total_energy_pj.to_bits(), b.total_energy_pj.to_bits());
    assert_eq!(a.overhead.total_bits(), b.overhead.total_bits());
}
