//! Offline drop-in subset of the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the benchmark-harness surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`Throughput`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! It runs each benchmark a small fixed number of times and prints a
//! mean wall-clock per iteration — enough to smoke-test the benches and
//! spot order-of-magnitude regressions, without criterion's statistics.

use std::hint;
use std::time::{Duration, Instant};

/// Iterations per measured benchmark. Deliberately tiny: these benches
/// double as smoke tests under `cargo test`, so total runtime matters
/// more than statistical power.
const WARMUP_ITERS: u64 = 2;
const MEASURE_ITERS: u64 = 10;

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Declared throughput of one benchmark iteration, used to report a
/// rate alongside the per-iteration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Measures a single benchmark body.
pub struct Bencher {
    mean: Option<Duration>,
}

impl Bencher {
    /// Run `body` repeatedly, recording the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(body());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(body());
        }
        self.mean = Some(start.elapsed() / MEASURE_ITERS as u32);
    }
}

fn report(id: &str, mean: Option<Duration>, throughput: Option<Throughput>) {
    let Some(mean) = mean else {
        println!("bench {id:<40} (no measurement)");
        return;
    };
    let rate = throughput.map(|t| {
        let per_sec = |n: u64| n as f64 / mean.as_secs_f64();
        match t {
            Throughput::Bytes(n) => format!(" ({:.1} MiB/s)", per_sec(n) / (1024.0 * 1024.0)),
            Throughput::Elements(n) => format!(" ({:.0} elem/s)", per_sec(n)),
        }
    });
    println!(
        "bench {id:<40} {:>12.3?}/iter{}",
        mean,
        rate.unwrap_or_default()
    );
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut body: F) -> &mut Self {
        let mut bencher = Bencher { mean: None };
        body(&mut bencher);
        report(id, bencher.mean, None);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the throughput of each subsequent benchmark.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut body: F) -> &mut Self {
        let mut bencher = Bencher { mean: None };
        body(&mut bencher);
        report(
            &format!("{}/{id}", self.name),
            bencher.mean,
            self.throughput,
        );
        self
    }

    /// Finish the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.throughput(Throughput::Bytes(4096));
        group.bench_function("memcpy", |b| b.iter(|| vec![0u8; 4096]));
        group.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn harness_runs_and_measures() {
        smoke();
        let mut bencher = Bencher { mean: None };
        bencher.iter(|| black_box(1 + 1));
        assert!(bencher.mean.is_some());
    }
}
