//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides exactly the API surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]/[`Rng::gen_bool`],
//! and [`seq::SliceRandom`]. The generator is SplitMix64-seeded
//! xoshiro256++, deterministic across platforms, which is all the
//! schedulers need (reproducible pseudo-random search, not cryptographic
//! randomness).

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Ranges (and range-likes) that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Widening-multiply rejection sampling (Lemire): unbiased and cheap.
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (span as u128);
        if (m as u64) <= zone || span.is_power_of_two() {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as $t as u64 && span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic for a given seed on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // emit four zeros in a row, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{uniform_u64, Rng};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn shuffle_and_choose_cover_all_elements() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..10).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
