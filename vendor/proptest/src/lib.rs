//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! reimplements the slice of proptest the workspace's property tests
//! use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`/`prop_filter_map`, [`strategy::Just`],
//! [`prop_oneof!`], [`any`](strategy::any), [`collection::vec`],
//! [`sample::Index`], and the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed (no `proptest-regressions` persistence)
//! and failing cases are reported without shrinking. Failures therefore
//! print the full generated input; rerunning reproduces them exactly.

pub mod test_runner {
    //! Case generation and failure plumbing used by the macros.

    /// Runtime knobs for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Consecutive rejections tolerated before the test aborts.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the input; try another.
        Reject,
        /// An assertion failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing outcome with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Deterministic per-case generator (SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "cannot sample an empty span");
            let zone = u64::MAX - (u64::MAX - span + 1) % span;
            loop {
                let v = self.next_u64();
                let m = (v as u128) * (span as u128);
                if (m as u64) <= zone || span.is_power_of_two() {
                    return (m >> 64) as u64;
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// `generate` returns `None` when the drawn raw input does not
    /// satisfy the strategy's filters (the runner then retries with the
    /// next case seed).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a dependent strategy from each value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Transform values, rejecting those mapped to `None`.
        fn prop_filter_map<O, F>(self, _whence: impl Into<String>, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<T::Value> {
            (self.f)(self.inner.generate(rng)?).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Option<O> {
            (self.f)(self.inner.generate(rng)?)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            (**self).generate(rng)
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Build a [`OneOf`] (used by `prop_oneof!`).
    pub fn one_of<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }

    /// Box a strategy for use in heterogeneous [`OneOf`] lists.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Generate any value of an [`Arbitrary`] type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// See [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            Some(T::arbitrary(rng))
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    Some(self.start + rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return Some(rng.next_u64() as $t);
                    }
                    Some(lo + rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    impl_int_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.generate(rng)?,)+))
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! Types with a canonical "any value" generator.

    use crate::test_runner::TestRng;

    /// Types that can be generated from raw random bits.
    pub trait Arbitrary {
        /// Draw one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let mut out = [0u8; N];
            for chunk in out.chunks_mut(8) {
                let bytes = rng.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
            out
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Index sampling (`any::<prop::sample::Index>()`).

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// A length-agnostic index: resolve against a concrete collection
    /// length with [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// The index modulo `len`. Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module alias so `prop::sample::Index` etc. resolve.
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rejects: u32 = 0;
                let mut case: u32 = 0;
                let mut ran: u32 = 0;
                while ran < config.cases {
                    if rejects > config.max_global_rejects {
                        panic!(
                            "proptest '{}': too many rejected inputs ({} after {} accepted)",
                            stringify!($name), rejects, ran
                        );
                    }
                    let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    case += 1;
                    $(
                        let $pat = match $crate::strategy::Strategy::generate(&($strat), &mut rng) {
                            ::std::option::Option::Some(v) => v,
                            ::std::option::Option::None => {
                                rejects += 1;
                                continue;
                            }
                        };
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {
                            ran += 1;
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            rejects += 1;
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at generated case {}: {}",
                                stringify!($name), case - 1, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), a, b
            )));
        }
    }};
}

/// Fail the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Reject the current case unless `cond` holds (not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn tuples_and_maps((a, b) in (1u32..5, 1u32..5).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(a % 2 == 0);
            prop_assert!(b < 5);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_picks_arms(x in prop_oneof![Just(1u64), Just(3), Just(5)]) {
            prop_assert!(x == 1 || x == 3 || x == 5);
        }

        #[test]
        fn assume_rejects(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }

        #[test]
        fn index_resolves(i in any::<prop::sample::Index>()) {
            prop_assert!(i.index(7) < 7);
        }

        #[test]
        fn flat_map_dependent((n, k) in (1u64..10).prop_flat_map(|n| (Just(n), 0..n))) {
            prop_assert!(k < n);
        }

        #[test]
        fn filter_map_filters(x in (0u64..100).prop_filter_map("even", |x| (x % 2 == 0).then_some(x))) {
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn arrays_generate(a in any::<[u8; 12]>(), b in any::<[u8; 16]>()) {
            prop_assert_eq!(a.len(), 12);
            prop_assert_eq!(b.len(), 16);
        }
    }

    #[test]
    fn byte_arrays_are_not_constant() {
        let mut rng = crate::test_runner::TestRng::for_case("bytes", 0);
        let a = <[u8; 16] as Arbitrary>::arbitrary(&mut rng);
        let b = <[u8; 16] as Arbitrary>::arbitrary(&mut rng);
        assert_ne!(a, b);
    }
}
