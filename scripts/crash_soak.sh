#!/usr/bin/env bash
# Kill-injection soak for the durable artifact layer: SIGKILL (-9, no
# handlers, no drain) `secureloop serve` at random points while it works
# through a reference sweep job, restarting it on the same state dir
# after every kill, then assert:
#
#   - every restart reaches a consistent state (a `ready` event, even
#     when the kill tore the journal or a checkpoint mid-write),
#   - completed design points are never recomputed: each design's
#     `evaluated` progress event appears at most once across every
#     phase log (the event is emitted only after the durable
#     checkpoint save landed),
#   - the job's final results are byte-identical to an uninterrupted
#     one-shot `secureloop dse` run of the same sweep,
#   - the ENOSPC leg: a sweep whose every artifact write fails
#     (SECURELOOP_ARTIFACT_IO_FAIL=all) still completes all designs,
#     reports degraded persistence, and exits 2.
#
# Run from the repo root: scripts/crash_soak.sh
set -euo pipefail

BIN=${BIN:-./target/release/secureloop}
KILLS=${KILLS:-20}
WORK=$(mktemp -d)
SERVER_PID=""
trap 'kill -9 "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT
STATE="$WORK/state"

say() { echo "[crash-soak] $*"; }

[ -x "$BIN" ] || { echo "missing $BIN (cargo build --release first)"; exit 1; }

# The reference sweep: the full 18-design Fig. 16 space, exactly what
# the one-shot `dse` command runs with the same budgets and seed.
BUDGET='"workload":"mlp","samples":40,"iterations":5,"seed":1'

say "one-shot reference run"
"$BIN" dse --workload mlp --samples 40 --iterations 5 --seed 1 --no-cache --json \
    > "$WORK/oneshot.json"

start_server() { # $1 = fifo, $2 = log
    mkfifo "$1"
    "$BIN" serve --state-dir "$STATE" --service-workers 1 < "$1" > "$2" &
    SERVER_PID=$!
}

wait_for() { # $1 = pattern, $2 = file, $3 = timeout secs
    for _ in $(seq 1 $(( $3 * 10 ))); do
        grep -q "$1" "$2" 2>/dev/null && return 0
        kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died"; cat "$2"; exit 1; }
        sleep 0.1
    done
    echo "timeout waiting for $1 in $2"; cat "$2"; exit 1
}

say "phase 0: submit the reference job"
start_server "$WORK/in0" "$WORK/phase-00.log"
exec 3>"$WORK/in0"
wait_for '"event":"ready"' "$WORK/phase-00.log" 30
echo "{\"op\":\"submit\",\"id\":\"ref\",$BUDGET}" >&3
wait_for '"event":"started"' "$WORK/phase-00.log" 30

done_log=""
for phase in $(seq 0 $(( KILLS - 1 ))); do
    log=$(printf '%s/phase-%02d.log' "$WORK" "$phase")
    # Kill at a random point: anywhere in a design evaluation,
    # including mid-checkpoint-write and mid-journal-write.
    sleep "0.$(( (RANDOM % 9) + 1 ))"; sleep "$(( RANDOM % 2 ))"
    kill -9 "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    exec 3>&- 2>/dev/null || true
    if grep -q '"event":"result"' "$log"; then done_log="$log"; fi

    next=$(( phase + 1 ))
    fifo=$(printf '%s/in%d' "$WORK" "$next")
    nextlog=$(printf '%s/phase-%02d.log' "$WORK" "$next")
    start_server "$fifo" "$nextlog"
    exec 3>"$fifo"
    # The consistency assertion: a restart on a state dir torn by
    # SIGKILL must always come up (salvage, .bak fallback, or a
    # tolerated empty/stale artifact — never a refusal to start).
    wait_for '"event":"ready"' "$nextlog" 30
done
say "survived $KILLS SIGKILL/restart cycles"

finallog=$(printf '%s/phase-%02d.log' "$WORK" "$KILLS")
if [ -z "$done_log" ]; then
    say "waiting for the resumed job to finish"
    wait_for '"event":"result"' "$finallog" 600
    done_log="$finallog"
fi
echo '{"op":"shutdown"}' >&3
rc=0; wait "$SERVER_PID" || rc=$?
SERVER_PID=""
exec 3>&-
[ "$rc" -eq 0 ] || { echo "expected clean exit 0 after drain, got $rc"; exit 1; }

say "checking the transcripts"
python3 - "$WORK" "$done_log" <<'EOF'
import glob, json, sys

work, done_log = sys.argv[1], sys.argv[2]
events = []
for log in sorted(glob.glob(f"{work}/phase-*.log")):
    with open(log) as f:
        events += [json.loads(l) for l in f if l.strip()]

# Zero recomputation: the `evaluated` progress event is emitted after
# the durable checkpoint save, so a design seen here is on disk — it
# must never be evaluated again by any later incarnation.
evaluated = {}
for e in events:
    if e.get("event") == "progress" and e.get("outcome") == "evaluated":
        evaluated[e["design"]] = evaluated.get(e["design"], 0) + 1
recomputed = {d: n for d, n in evaluated.items() if n > 1}
assert not recomputed, f"completed designs recomputed: {recomputed}"

# The job finished covering the whole space exactly once.
result = next(e for l in [done_log] for e in
              (json.loads(x) for x in open(l) if x.strip())
              if e.get("event") == "result" and e.get("id") == "ref")
assert result["status"] == "completed", result["status"]
report = result["report"]
assert report["reused"] + report["evaluated"] == 18, (
    report["reused"], report["evaluated"])

# Byte-identical to the uninterrupted one-shot run.
oneshot = json.load(open(f"{work}/oneshot.json"))
assert report["designs"] == oneshot["designs"], (
    "crash-recovered results diverge from the one-shot CLI:\n"
    f"  service: {json.dumps(report['designs'])[:400]}\n"
    f"  oneshot: {json.dumps(oneshot['designs'])[:400]}")

print(f"crash-soak OK: {len(evaluated)} designs evaluated exactly once, "
      f"{report['reused']} restored in the final run")
EOF

say "ENOSPC leg: every artifact write fails, sweep must finish with exit 2"
rc=0
SECURELOOP_ARTIFACT_IO_FAIL=all "$BIN" dse --workload mlp \
    --samples 20 --iterations 3 --seed 1 --no-cache \
    --checkpoint "$WORK/enospc.ckpt.json" \
    --io-retries 0 --durability fast --json > "$WORK/enospc.json" || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 under persistent write failure, got $rc"; exit 1; }
python3 - "$WORK" <<'EOF'
import json, sys
r = json.load(open(f"{sys.argv[1]}/enospc.json"))
assert r["degraded_persistence"] is True
assert len(r["designs"]) == 18, "a full disk must never cost results"
print("ENOSPC leg OK: 18 designs computed in degraded in-memory mode")
EOF
[ ! -e "$WORK/enospc.ckpt.json" ] || { echo "no checkpoint must land"; exit 1; }

say "PASS"
