#!/usr/bin/env bash
# Soak test for `secureloop serve`: 20 jobs (2 fault-planned poison
# jobs, a burst that overflows the queue), SIGTERM mid-run, restart on
# the same state dir, then assert:
#
#   - the burst was shed with typed `overloaded` responses,
#   - the poison jobs settled as `poisoned` with their cause,
#   - every resumable job completed after the restart,
#   - the reference job's results are identical to a one-shot
#     `secureloop dse` run of the same sweep.
#
# Run from the repo root: scripts/service_soak.sh
set -euo pipefail

BIN=${BIN:-./target/release/secureloop}
WORK=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT
STATE="$WORK/state"

say() { echo "[soak] $*"; }

[ -x "$BIN" ] || { echo "missing $BIN (cargo build --release first)"; exit 1; }

# Small per-job budgets keep each design point around a second; the
# reference job runs the full 18-design Fig. 16 space exactly like the
# one-shot `dse` command (same workload/budgets/seed).
BUDGET='"workload":"mlp","samples":20,"iterations":3,"seed":1'
DESIGNS=("14x12/16kB/Pipelined" "14x12/32kB/Pipelined" "14x12/131kB/Pipelined"
         "14x24/16kB/Parallel" "14x24/32kB/Parallel" "28x24/16kB/Pipelined")

say "one-shot reference run"
"$BIN" dse --workload mlp --samples 20 --iterations 3 --seed 1 --no-cache --json \
    > "$WORK/oneshot.json"

start_server() { # $1 = fifo, $2 = log
    mkfifo "$1"
    "$BIN" serve --state-dir "$STATE" --queue-depth 6 --service-workers 2 \
        --max-retries 1 < "$1" > "$2" &
    SERVER_PID=$!
}

wait_for() { # $1 = pattern, $2 = file, $3 = timeout secs
    for _ in $(seq 1 $(( $3 * 10 ))); do
        grep -q "$1" "$2" 2>/dev/null && return 0
        kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died"; exit 1; }
        sleep 0.1
    done
    echo "timeout waiting for $1 in $2"; cat "$2"; exit 1
}

say "phase 1: server up, 20-job burst against a depth-6 queue"
start_server "$WORK/in1" "$WORK/soak-1.log"
exec 3>"$WORK/in1"
wait_for '"event":"ready"' "$WORK/soak-1.log" 30

# j01 is the byte-identity reference (full space, no designs filter —
# the exact sweep the one-shot run above did). j02/j03 are the planned
# poison jobs: an injected panic scoped to their own design.
echo "{\"op\":\"submit\",\"id\":\"j01\",$BUDGET}" >&3
for i in 2 3; do
    d=${DESIGNS[$((i - 2))]}
    echo "{\"op\":\"submit\",\"id\":\"j0$i\",$BUDGET,\"designs\":[\"$d\"],\"fault\":{\"kind\":\"panic\",\"layers\":[\"fc0\"],\"arch\":\"$d\"}}" >&3
done
for i in $(seq 4 20); do
    id=$(printf 'j%02d' "$i")
    d=${DESIGNS[$(( (i - 4) % ${#DESIGNS[@]} ))]}
    echo "{\"op\":\"submit\",\"id\":\"$id\",$BUDGET,\"designs\":[\"$d\"]}" >&3
done

wait_for '"event":"overloaded"' "$WORK/soak-1.log" 30
say "typed shedding observed"
wait_for '"event":"result"' "$WORK/soak-1.log" 120
sleep 1

say "SIGTERM mid-run"
kill -TERM "$SERVER_PID"
rc=0; wait "$SERVER_PID" || rc=$?
exec 3>&-
[ "$rc" -eq 3 ] || { echo "expected exit 3 after SIGTERM, got $rc"; exit 1; }
grep -q '"event":"checkpointed"' "$WORK/soak-1.log" \
    || { echo "no job was checkpointed by the drain"; cat "$WORK/soak-1.log"; exit 1; }

say "phase 2: restart on the same state dir"
start_server "$WORK/in2" "$WORK/soak-2.log"
exec 3>"$WORK/in2"
wait_for '"event":"ready"' "$WORK/soak-2.log" 30

resumed=$(python3 -c "
import json,sys
ready = json.loads(open('$WORK/soak-2.log').readline())
assert ready['resumed'] >= 1, 'nothing was resumable after a mid-run SIGTERM'
print(ready['resumed'])")
say "resumed $resumed job(s); waiting for them to finish"
for _ in $(seq 1 3000); do
    n=$(grep -c '"event":"result"' "$WORK/soak-2.log" || true)
    [ "$n" -ge "$resumed" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died"; exit 1; }
    sleep 0.1
done

echo '{"op":"shutdown"}' >&3
rc=0; wait "$SERVER_PID" || rc=$?
exec 3>&-
[ "$rc" -eq 0 ] || { echo "expected clean exit 0, got $rc"; exit 1; }

say "checking the transcripts"
python3 - "$WORK" "$resumed" <<'EOF'
import json, sys

work, resumed = sys.argv[1], int(sys.argv[2])
events = []
for log in ("soak-1.log", "soak-2.log"):
    with open(f"{work}/{log}") as f:
        events += [json.loads(l) for l in f if l.strip()]

results = {e["id"]: e for e in events if e.get("event") == "result"}
shed = {e["id"] for e in events if e.get("event") == "overloaded"}
jobs = {f"j{i:02d}" for i in range(1, 21)}

# Every job reached a disposition: a terminal result or a typed shed.
missing = jobs - set(results) - shed
assert not missing, f"jobs with no disposition: {sorted(missing)}"
assert shed, "the burst never overflowed the queue"
for e in events:
    if e.get("event") == "overloaded":
        assert e["queue_limit"] == 6, e

# The planned poison jobs report their cause; nothing else poisoned.
for jid in ("j02", "j03"):
    if jid in results:  # unless the burst shed them first
        assert results[jid]["status"] == "poisoned", results[jid]
        assert "panic" in results[jid]["cause"], results[jid]
for jid, r in results.items():
    if jid not in ("j02", "j03"):
        assert r["status"] == "completed", r

# The reference job matches the one-shot CLI run design for design.
oneshot = json.load(open(f"{work}/oneshot.json"))
assert "j01" in results, "the reference job was shed"
service = results["j01"]["report"]["designs"]
assert service == oneshot["designs"], (
    "service results diverge from the one-shot CLI:\n"
    f"  service: {json.dumps(service)[:400]}\n"
    f"  oneshot: {json.dumps(oneshot['designs'])[:400]}")

# Everything that survived the SIGTERM completed after the restart.
phase2 = [json.loads(l) for l in open(f"{work}/soak-2.log") if l.strip()]
done2 = [e for e in phase2 if e.get("event") == "result"]
assert len(done2) >= resumed, (len(done2), resumed)

print(f"soak OK: {len(results)} results, {len(shed)} shed, "
      f"{resumed} resumed after SIGTERM, reference byte-identical")
EOF

say "PASS"
